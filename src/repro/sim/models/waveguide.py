"""Waveguide-like device models: straight waveguide and phase shifter.

Both models are two-port (``I1`` -> ``O1``) devices whose transmission is a
pure phase rotation (plus optional propagation loss).  Dispersion is handled
to first order through the group index, matching the standard model used by
SAX's ``straight`` component:

``neff(wl) = neff - (wl - wl0) * (ng - neff) / wl0``
"""

from __future__ import annotations

import numpy as np

from ...constants import (
    DEFAULT_CENTER_WAVELENGTH_UM,
    DEFAULT_LOSS_DB_PER_CM,
    DEFAULT_NEFF,
    DEFAULT_NG,
    db_per_cm_to_neper_per_um,
)
from ..sparams import SMatrix, sdict_to_smatrix

__all__ = ["waveguide", "phase_shifter", "propagation_phase", "propagation_amplitude"]


def propagation_phase(
    wavelengths: np.ndarray,
    length: float,
    neff: float = DEFAULT_NEFF,
    ng: float = DEFAULT_NG,
    wl0: float = DEFAULT_CENTER_WAVELENGTH_UM,
) -> np.ndarray:
    """Accumulated propagation phase (radians) over ``length`` microns.

    Uses a first-order dispersion expansion of the effective index around the
    centre wavelength ``wl0``.
    """
    wavelengths = np.asarray(wavelengths, dtype=float)
    dneff = (ng - neff) / wl0
    neff_wl = neff - dneff * (wavelengths - wl0)
    return 2.0 * np.pi * neff_wl * length / wavelengths


def propagation_amplitude(length, loss_db_cm=DEFAULT_LOSS_DB_PER_CM):
    """Field amplitude transmission of a waveguide of ``length`` microns.

    Elementwise over array inputs (for batched parameter stacks); scalar
    inputs return a plain float, numerically identical to the historical
    scalar-only implementation.
    """
    amplitude = np.exp(-db_per_cm_to_neper_per_um(loss_db_cm) * np.asarray(length, dtype=float))
    if np.ndim(length) == 0 and np.ndim(loss_db_cm) == 0:
        return float(amplitude)
    return amplitude


def waveguide(
    wavelengths: np.ndarray,
    *,
    length: float = 10.0,
    neff: float = DEFAULT_NEFF,
    ng: float = DEFAULT_NG,
    wl0: float = DEFAULT_CENTER_WAVELENGTH_UM,
    loss_db_cm: float = DEFAULT_LOSS_DB_PER_CM,
) -> SMatrix:
    """Straight single-mode waveguide.

    Ports: ``I1`` (input), ``O1`` (output).

    Parameters
    ----------
    length:
        Physical length in microns.
    neff, ng, wl0:
        Effective index, group index and reference wavelength of the
        first-order dispersion model.
    loss_db_cm:
        Propagation loss in dB/cm (power).
    """
    phase = propagation_phase(wavelengths, length, neff, ng, wl0)
    amp = propagation_amplitude(length, loss_db_cm)
    s21 = amp * np.exp(-1j * phase)
    return sdict_to_smatrix(wavelengths, ("I1", "O1"), {("O1", "I1"): s21})


def phase_shifter(
    wavelengths: np.ndarray,
    *,
    length: float = 10.0,
    phase: float = 0.0,
    neff: float = DEFAULT_NEFF,
    ng: float = DEFAULT_NG,
    wl0: float = DEFAULT_CENTER_WAVELENGTH_UM,
    loss_db_cm: float = DEFAULT_LOSS_DB_PER_CM,
) -> SMatrix:
    """Thermo-optic / electro-optic phase shifter.

    Behaves like a straight waveguide of the given ``length`` with an extra,
    wavelength-independent phase offset ``phase`` (radians) applied on top of
    the propagation phase.

    Ports: ``I1`` (input), ``O1`` (output).
    """
    prop = propagation_phase(wavelengths, length, neff, ng, wl0)
    amp = propagation_amplitude(length, loss_db_cm)
    s21 = amp * np.exp(-1j * (prop + phase))
    return sdict_to_smatrix(wavelengths, ("I1", "O1"), {("O1", "I1"): s21})
