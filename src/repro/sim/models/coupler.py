"""Directional coupler and multimode-interference (MMI) coupler models.

All couplers are modelled as ideal, wavelength-flat power splitters.  The
2x2 devices are lossless and unitary; the 1x2 / 2x1 MMIs follow the usual
convention of splitting the input power evenly over the outputs (a 3-port
reciprocal splitter cannot be unitary -- the "missing" power on combination
corresponds to radiation into the substrate, exactly as in a physical MMI).
"""

from __future__ import annotations

import numpy as np

from ..sparams import SMatrix, sdict_to_smatrix

__all__ = ["coupler", "mmi1x2", "mmi2x1", "mmi2x2", "splitter_tree_amplitude"]


def coupler(wavelengths: np.ndarray, *, coupling: float = 0.5) -> SMatrix:
    """Lossless directional coupler.

    Ports: ``I1``, ``I2`` (inputs), ``O1``, ``O2`` (outputs).

    Parameters
    ----------
    coupling:
        Power coupling ratio into the cross port, between 0 and 1.  The
        through (bar) amplitude is ``sqrt(1 - coupling)``; the cross amplitude
        is ``1j * sqrt(coupling)``.  A per-wavelength array is accepted (the
        batched executor evaluates parameter stacks through the tiled
        wavelength axis).
    """
    values = np.asarray(coupling, dtype=float)
    if np.any((values < 0.0) | (values > 1.0)):
        raise ValueError(f"coupling must be within [0, 1], got {coupling}")
    thru = np.sqrt(1.0 - values)
    cross = 1j * np.sqrt(values)
    return sdict_to_smatrix(
        wavelengths,
        ("I1", "I2", "O1", "O2"),
        {
            ("O1", "I1"): thru,
            ("O2", "I2"): thru,
            ("O2", "I1"): cross,
            ("O1", "I2"): cross,
        },
    )


def mmi1x2(wavelengths: np.ndarray, *, loss_db: float = 0.0) -> SMatrix:
    """1x2 multimode interference splitter.

    Ports: ``I1`` (input), ``O1``, ``O2`` (outputs).  The input power is split
    evenly across both outputs.

    Parameters
    ----------
    loss_db:
        Excess insertion loss in dB (power), applied on top of the ideal 3 dB
        split.
    """
    amp = np.sqrt(0.5) * 10.0 ** (-loss_db / 20.0)
    return sdict_to_smatrix(
        wavelengths,
        ("I1", "O1", "O2"),
        {("O1", "I1"): amp, ("O2", "I1"): amp},
    )


def mmi2x1(wavelengths: np.ndarray, *, loss_db: float = 0.0) -> SMatrix:
    """2x1 multimode interference combiner.

    Ports: ``I1``, ``I2`` (inputs), ``O1`` (output).  Each input couples to the
    output with amplitude ``1/sqrt(2)``; in-phase inputs therefore combine
    without loss while out-of-phase inputs radiate away, as in a physical MMI.
    """
    amp = np.sqrt(0.5) * 10.0 ** (-loss_db / 20.0)
    return sdict_to_smatrix(
        wavelengths,
        ("I1", "I2", "O1"),
        {("O1", "I1"): amp, ("O1", "I2"): amp},
    )


def mmi2x2(wavelengths: np.ndarray, *, loss_db: float = 0.0) -> SMatrix:
    """2x2 multimode interference coupler (50/50, 90-degree hybrid convention).

    Ports: ``I1``, ``I2`` (inputs), ``O1``, ``O2`` (outputs).  The bar paths
    carry amplitude ``1/sqrt(2)`` and the cross paths ``1j/sqrt(2)``, which is
    unitary when ``loss_db`` is zero.
    """
    amp = np.sqrt(0.5) * 10.0 ** (-loss_db / 20.0)
    return sdict_to_smatrix(
        wavelengths,
        ("I1", "I2", "O1", "O2"),
        {
            ("O1", "I1"): amp,
            ("O2", "I2"): amp,
            ("O2", "I1"): 1j * amp,
            ("O1", "I2"): 1j * amp,
        },
    )


def splitter_tree_amplitude(num_outputs: int) -> float:
    """Field amplitude per output of an ideal 1-to-``num_outputs`` splitter tree."""
    if num_outputs < 1:
        raise ValueError("num_outputs must be positive")
    return float(1.0 / np.sqrt(num_outputs))
