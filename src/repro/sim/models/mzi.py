"""Mach-Zehnder interferometer models.

Two flavours are provided:

``mzi``
    The 1-input / 1-output MZI the paper's API document describes ("MZI with
    one input and one output, parameters: delta length").  It is the analytic
    composition of a 1x2 MMI, two waveguide arms whose lengths differ by
    ``delta_length``, and a 2x1 MMI.

``mzi2x2``
    The 2x2 MZI unit cell used by the Reck / Clements meshes and by optical
    switches.  Two 50/50 couplers sandwich an internal phase shifter ``theta``
    (upper arm) and an external input phase shifter ``phi`` (upper input).
"""

from __future__ import annotations

import numpy as np

from ...constants import (
    DEFAULT_CENTER_WAVELENGTH_UM,
    DEFAULT_LOSS_DB_PER_CM,
    DEFAULT_NEFF,
    DEFAULT_NG,
)
from ..sparams import SMatrix, sdict_to_smatrix
from .waveguide import propagation_amplitude, propagation_phase

__all__ = ["mzi", "mzi2x2", "mzi2x2_transfer_matrix"]


def mzi(
    wavelengths: np.ndarray,
    *,
    delta_length: float = 10.0,
    length: float = 10.0,
    neff: float = DEFAULT_NEFF,
    ng: float = DEFAULT_NG,
    wl0: float = DEFAULT_CENTER_WAVELENGTH_UM,
    loss_db_cm: float = DEFAULT_LOSS_DB_PER_CM,
) -> SMatrix:
    """Unbalanced 1x1 Mach-Zehnder interferometer.

    Ports: ``I1`` (input), ``O1`` (output).

    Parameters
    ----------
    delta_length:
        Path-length difference between the two arms, in microns.
    length:
        Length of the shorter (reference) arm, in microns.
    """
    phase_short = propagation_phase(wavelengths, length, neff, ng, wl0)
    phase_long = propagation_phase(wavelengths, length + delta_length, neff, ng, wl0)
    amp_short = propagation_amplitude(length, loss_db_cm)
    amp_long = propagation_amplitude(length + delta_length, loss_db_cm)
    s21 = 0.5 * (amp_short * np.exp(-1j * phase_short) + amp_long * np.exp(-1j * phase_long))
    return sdict_to_smatrix(wavelengths, ("I1", "O1"), {("O1", "I1"): s21})


def mzi2x2_transfer_matrix(theta: float, phi: float) -> np.ndarray:
    """Ideal (wavelength-independent) 2x2 transfer matrix of the MZI unit cell.

    The cell consists of an input phase shifter ``phi`` on the upper input,
    a 50/50 coupler, an internal phase shifter ``theta`` on the upper arm, and
    a second 50/50 coupler.  The returned matrix ``T`` maps input field
    amplitudes ``(I1, I2)`` to output amplitudes ``(O1, O2)``:

    ``T = C @ diag(exp(1j*theta), 1) @ C @ diag(exp(1j*phi), 1)``

    with ``C = [[1, 1j], [1j, 1]] / sqrt(2)``.  ``T`` is unitary for any
    ``theta`` and ``phi``.
    """
    coupler_matrix = np.array([[1.0, 1j], [1j, 1.0]], dtype=complex) / np.sqrt(2.0)
    internal = np.diag([np.exp(1j * theta), 1.0])
    external = np.diag([np.exp(1j * phi), 1.0])
    return coupler_matrix @ internal @ coupler_matrix @ external


def mzi2x2(
    wavelengths: np.ndarray,
    *,
    theta: float = 0.0,
    phi: float = 0.0,
    length: float = 10.0,
    delta_length: float = 0.0,
    neff: float = DEFAULT_NEFF,
    ng: float = DEFAULT_NG,
    wl0: float = DEFAULT_CENTER_WAVELENGTH_UM,
    loss_db_cm: float = DEFAULT_LOSS_DB_PER_CM,
) -> SMatrix:
    """2x2 Mach-Zehnder interferometer unit cell.

    Ports: ``I1``, ``I2`` (inputs), ``O1``, ``O2`` (outputs).

    Parameters
    ----------
    theta:
        Internal phase (radians) applied to the upper arm between the two
        couplers; ``theta = pi`` puts the cell in the bar state, ``theta = 0``
        in the cross state.
    phi:
        External phase (radians) applied to the upper input before the first
        coupler.
    length:
        Physical arm length in microns (adds a common propagation phase).
    delta_length:
        Optional arm-length imbalance (upper arm is longer), making the cell
        wavelength dependent.
    """
    wavelengths = np.atleast_1d(np.asarray(wavelengths, dtype=float))
    coupler_matrix = np.array([[1.0, 1j], [1j, 1.0]], dtype=complex) / np.sqrt(2.0)

    phase_lower = propagation_phase(wavelengths, length, neff, ng, wl0)
    phase_upper = propagation_phase(wavelengths, length + delta_length, neff, ng, wl0)
    amp_lower = propagation_amplitude(length, loss_db_cm)
    amp_upper = propagation_amplitude(length + delta_length, loss_db_cm)

    num_wl = wavelengths.size
    transfer = np.empty((num_wl, 2, 2), dtype=complex)
    external = np.diag([np.exp(1j * phi), 1.0])
    for w in range(num_wl):
        internal = np.diag(
            [
                amp_upper * np.exp(1j * theta) * np.exp(-1j * phase_upper[w]),
                amp_lower * np.exp(-1j * phase_lower[w]),
            ]
        )
        transfer[w] = coupler_matrix @ internal @ coupler_matrix @ external

    sdict = {
        ("O1", "I1"): transfer[:, 0, 0],
        ("O1", "I2"): transfer[:, 0, 1],
        ("O2", "I1"): transfer[:, 1, 0],
        ("O2", "I2"): transfer[:, 1, 1],
    }
    return sdict_to_smatrix(wavelengths, ("I1", "I2", "O1", "O2"), sdict)
