"""Built-in photonic device models.

Every model is a plain function ``model(wavelengths, **settings) -> SMatrix``.
The :mod:`repro.sim.registry` module wraps them with metadata (port names,
parameter defaults, human-readable descriptions) which is also used to
generate the "API document" section of the paper's system prompt (Fig. 3).
"""

from .coupler import coupler, mmi1x2, mmi2x1, mmi2x2
from .misc import crossing, switch1x2, switch2x1, switch2x2, terminator
from .modulator import amplifier, attenuator, eam, mzm, phase_modulator
from .mzi import mzi, mzi2x2, mzi2x2_transfer_matrix
from .ring import mrr_adddrop, mrr_allpass
from .waveguide import phase_shifter, waveguide

__all__ = [
    "waveguide",
    "phase_shifter",
    "coupler",
    "mmi1x2",
    "mmi2x1",
    "mmi2x2",
    "mzi",
    "mzi2x2",
    "mzi2x2_transfer_matrix",
    "mrr_allpass",
    "mrr_adddrop",
    "mzm",
    "phase_modulator",
    "eam",
    "attenuator",
    "amplifier",
    "crossing",
    "switch1x2",
    "switch2x1",
    "switch2x2",
    "terminator",
]
