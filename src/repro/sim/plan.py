"""Compiled circuit plans: the compile/execute split of the circuit solver.

The evaluation pipeline's hot path simulates hundreds of *structurally
identical* netlists per sweep -- pass@k samples mutate instance settings far
more often than topology.  Yet assembling the flattened port index, the
structural masks, the Tarjan condensation and the cascade schedule is pure
*structure* work: none of it depends on the wavelength grid or on the actual
S-matrix values.  This module pays that work exactly once per topology:

``compile_netlist``
    Captures everything wavelength- and settings-independent in a
    :class:`CompiledCircuit`: the flattened port index (spans / owner /
    partner arrays), the connection structure, the SCC condensation
    (:class:`~repro.sim.cascade.CascadePlan`), and -- the parts that make
    execution fast -- a **level-batched schedule** with precomputed
    gather/scatter index arrays, split into **external-column groups** by
    structural reachability.

``execute_cascade``
    Runs a compiled circuit against concrete per-instance S-matrices.  Three
    compiled structures do the work the per-port Python loop of
    :func:`repro.sim.cascade.cascade_solve` used to redo on every call:

    * *Topological levels.* Singleton components are grouped by longest-path
      depth in the condensation; each level's accumulation is one
      fancy-indexed gather, one multiply and one contiguous slice ``+=``
      over all of the level's edges (feedback clusters keep their small
      local ``(W, n, n)`` solves, with prebuilt ``(rows, cols)`` fill
      arrays).  The workspace is port-major and permuted so every level's
      receiving rows are contiguous.
    * *Column groups.* An external port's injected wave only ever reaches
      the ports structurally downstream of it.  In switch fabrics and
      meshes most of the ``(P, E)`` workspace is therefore exactly zero --
      measured on the benchmark's 8x8 fabrics only 9-36% of edge-column
      work is structurally active.  Columns are grouped by reachability
      pattern and each group executes a restricted, row-compacted schedule,
      skipping the dead work entirely.
    * *Wavelength blocks.* The per-group workspace is processed in blocks
      sized to stay cache-resident; ``max_wavelength_chunk`` caps the block
      size, bounding peak memory on large grids.

``execute_dense``
    The dense backend over the same compiled assembly (spans, connection
    sources, injection ports), so both backends share one compile step.

:class:`~repro.sim.circuit.CircuitSolver` keys compiled plans in an LRU cache
by :func:`topology_fingerprint` -- instance models (registry ref + function
identity), per-instance structural masks, connections and external ports --
so a settings-only change (the common case) reuses the plan while a topology
change, a mask change (e.g. a coupling driven to zero) or a model
re-registration recompiles.  Both executors evaluate the very linear system
the dense backend solves (the cascade as its block-triangular elimination,
with structurally-zero terms dropped), so all paths agree to solver
round-off, well below the 1e-9 budget the test suite enforces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..netlist.errors import WrongPortError
from ..netlist.schema import Netlist, format_endpoint, parse_endpoint
from .cascade import CascadePlan, _dependent_rows, build_cascade_plan, structural_masks
from .guardrails import _record_degradation, collect_degradations, solve_with_fallback
from .kernels import Kernels, get_kernels, resolve_kernel_mode
from .sparams import SMatrix

__all__ = [
    "CompiledCircuit",
    "collect_degradations",
    "compile_netlist",
    "solve_with_fallback",
    "topology_fingerprint",
    "execute_cascade",
    "execute_dense",
]

#: Upper bound on the number of reachability column groups per plan; exact
#: per-column patterns beyond this are greedily merged (smallest extra work
#: first).
_MAX_COLUMN_GROUPS = 16

#: Workspaces smaller than this many cells skip column grouping entirely --
#: for tiny circuits one batched pass beats several restricted ones.
_MIN_CELLS_FOR_GROUPING = 1024

#: Wavelength points per block of the reciprocity-mirror transpose (keeps
#: the strided read/write pair cache-resident on batch-fused grids).
_MIRROR_BLOCK = 256

#: Target size (bytes) of the cascade executor's per-block workspace.  The
#: wavelength axis is processed in blocks small enough that the whole
#: ``(rows, block, cols)`` group workspace -- and the contribution buffer --
#: stay cache-resident across the level sweep.
_WORKSPACE_TARGET_BYTES = 4 << 20


# ----------------------------------------------------------------------
# Schedule building blocks (all index arrays, no matrix data)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SelfLoop:
    """A self-coupled singleton component: ``b = r / (1 - M_pp)``.

    ``row`` is the port's row in the group workspace.
    """

    row: int
    instance: int
    row_local: int
    col_local: int


@dataclass(frozen=True)
class _ClusterSolve:
    """A feedback cluster's local dense solve with prebuilt fill indices.

    ``rows`` are the cluster ports' workspace rows (aligned with the local
    positions of ``fill``); ``fill`` holds, per contributing instance, the
    fancy-index arrays ``(instance, system_rows, system_cols, m_rows,
    m_cols)`` such that ``system[:, system_rows, system_cols] =
    -matrices[instance][:, m_rows, m_cols]`` assembles the cluster's
    ``I - M`` block in one assignment.
    """

    rows: np.ndarray
    fill: Tuple[Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray], ...]


@dataclass(frozen=True)
class _PullLevel:
    """One level's batched accumulation of its incoming edge contributions.

    Workspace rows are laid out by topological depth with each depth's
    edge-receiving rows first and contiguous (``row_lo:row_hi``), so the
    accumulation is a single slice ``+=`` -- no scatter index.  Edges in
    ``start:stop`` (of the group's edge arrays) are sorted by target row;
    ``src`` are their source workspace rows, ``starts`` the segment
    boundaries per target row, and ``single_source`` flags the feed-forward
    common case of one in-edge per row, which skips the segment sum
    entirely.  Multi-source segments are summed by rank decomposition --
    gather every segment's first edge, then one fancy add per extra rank
    (``extra``) -- which vectorises where ``np.add.reduceat`` falls back to
    a scalar inner loop.
    """

    start: int
    stop: int
    src: np.ndarray
    starts: np.ndarray
    #: Per extra in-edge rank ``j >= 1``: (segment positions with more than
    #: ``j`` edges, edge positions of their rank-``j`` contribution).
    extra: Tuple[Tuple[np.ndarray, np.ndarray], ...]
    row_lo: int
    row_hi: int
    single_source: bool
    #: True when no receiving row of this level is seeded by an injection:
    #: the pull then *assigns* (multiply into the target slice) instead of
    #: accumulating, saving a full read-modify-write pass.
    assign: bool


@dataclass(frozen=True)
class _Step:
    """One topological depth: pull incoming edges, then solve its feedback."""

    level: int
    pull: Optional[_PullLevel]
    self_loops: Tuple[_SelfLoop, ...]
    clusters: Tuple[_ClusterSolve, ...]


@dataclass(frozen=True)
class _CoefGather:
    """One batched gather of edge coefficients into the flat edge array.

    Instance matrices of equal port count are stacked once per execution
    (see :attr:`CompiledCircuit.stack_members`); then
    ``coef[positions] = stacks[stack][pos, :, m_rows, m_cols]`` fills every
    edge whose owning instance lives in that stack -- one advanced-indexing
    op per (group, stack) instead of one per instance.
    """

    stack: int
    pos: np.ndarray
    m_rows: np.ndarray
    m_cols: np.ndarray
    positions: np.ndarray


@dataclass(frozen=True)
class _ColumnGroup:
    """The restricted schedule of one reachability group of external columns.

    Attributes
    ----------
    columns:
        External column indices this group computes (disjoint across groups,
        covering all of ``0..E-1``).
    num_rows:
        Rows of the group workspace: only ports structurally reachable from
        the group's injections (plus every external output row), compacted.
    injection:
        Per group column, ``(group column position, instance, workspace
        rows, local matrix rows, injected local column)`` -- the seed
        ``r = S E`` restricted to this group and to the structurally
        non-zero rows of the injected device column.
    out_rows:
        Workspace row of every external port (the result's row axis).
    steps / coef_gathers / num_edges / max_push_edges:
        The level schedule over the group's edges, the batched per-stack
        coefficient gathers, and the largest single-level edge count (sizes
        the reusable contribution buffer).
    """

    columns: np.ndarray
    num_rows: int
    #: Width of the workspace column axis.  Usually ``columns.size``; ``1``
    #: for a *stacked* group (several single-column reachability groups
    #: merged into one block-diagonal row space sharing one workspace
    #: column -- same element work, a fraction of the numpy-call count).
    workspace_cols: int
    injection: Tuple[Tuple[int, int, np.ndarray, np.ndarray, int], ...]
    #: 1-D (every external row, this group's columns) or, for a stacked
    #: group, 2-D ``(columns, external rows)`` workspace rows.
    out_rows: np.ndarray
    steps: Tuple[_Step, ...]
    coef_gathers: Tuple[_CoefGather, ...]
    num_edges: int
    max_push_edges: int


@dataclass(frozen=True)
class CompiledCircuit:
    """Everything wavelength- and settings-independent about one netlist.

    A compiled circuit is valid for any netlist whose
    :func:`topology_fingerprint` matches: same instance names and iteration
    order, same resolved models (registry ref + function identity + port
    names), same structural masks, same connections and external ports.
    Execution then only needs the concrete per-instance S-matrix data (in
    :attr:`instance_names` order) and the wavelength count.

    Attributes
    ----------
    fingerprint:
        The topology fingerprint this plan was compiled under (the plan-cache
        key).
    instance_names / instance_refs / func_identities:
        Per-instance name, resolved registry reference and model-function
        identity, memoised here so repeated evaluations do not recompute
        them (see ``CircuitSolver``).
    spans / owner / partner:
        ``(start, size)`` of each instance's contiguous port range, the
        owning instance of every flattened port, and every port's connected
        partner (``-1`` = dangling).  ``partner`` is ``None`` when a port has
        several partners (unvalidated netlists), in which case only the dense
        executor applies.
    sources:
        Connection structure of the dense assembly: per column ``j`` the
        ports ``k`` with ``C[k, j] = 1``.
    external_names / injection_ports / injection_instances / injection_locals:
        External port names and, per external column, the flattened instance
        port behind it plus its ``(instance, local column)`` address.
    plan:
        The cascade backend's :class:`~repro.sim.cascade.CascadePlan`
        (components in topological order, feedback clusters); ``None``
        when ``partner`` is ``None``.
    groups:
        The level-batched execution schedule, one restricted
        :class:`_ColumnGroup` per reachability group of external columns;
        ``None`` when the cascade executor does not apply.
    cover_groups / cover_mirror:
        The *reciprocity cover* schedule: for circuits whose instance
        S-matrices are all symmetric the composed response is symmetric too,
        so only a structurally-covering subset of external columns is
        computed and the ``cover_mirror`` columns are filled by transposing
        (their remaining block is structurally zero, proven by
        reachability).  ``None`` when no column can be dropped.  Symmetry is
        a *value* property, so the executor applies the cover only when the
        concrete matrices of a call are symmetric; the full ``groups``
        schedule remains the general path.
    stack_members:
        Instance indices grouped by port count: execution stacks each
        group's matrices into one ``(m, W, n, n)`` array so edge
        coefficients gather in one advanced-indexing op per stack.
    num_edges:
        Cross-component edges of the full signal-flow condensation (before
        column restriction) -- a size metric for introspection.
    kernel_mode:
        The :mod:`repro.sim.kernels` dispatch mode stamped at compile time
        (``"numba"``, ``"python"`` or ``None`` = numpy path).  Execution
        resolves it through :func:`~repro.sim.kernels.get_kernels`, which
        degrades unsatisfiable modes (a spilled plan loaded where numba is
        absent) back to numpy -- availability changes speed, never results.
    """

    fingerprint: str
    instance_names: Tuple[str, ...]
    instance_refs: Tuple[str, ...]
    func_identities: Tuple[str, ...]
    spans: Tuple[Tuple[int, int], ...]
    owner: np.ndarray
    partner: Optional[np.ndarray]
    sources: Tuple[Tuple[int, Tuple[int, ...]], ...]
    external_names: Tuple[str, ...]
    injection_ports: np.ndarray
    injection_instances: np.ndarray
    injection_locals: np.ndarray
    plan: Optional[CascadePlan]
    groups: Optional[Tuple[_ColumnGroup, ...]]
    cover_groups: Optional[Tuple[_ColumnGroup, ...]]
    cover_mirror: Optional[np.ndarray]
    stack_members: Tuple[np.ndarray, ...]
    num_edges: int
    kernel_mode: Optional[str] = None

    @property
    def num_ports(self) -> int:
        """Total number of flattened instance ports."""
        return int(self.owner.size)

    @property
    def num_external(self) -> int:
        """Number of external circuit ports."""
        return int(self.injection_ports.size)

    @property
    def supports_cascade(self) -> bool:
        """Whether the level-batched cascade executor applies to this plan."""
        return self.groups is not None

    @property
    def num_levels(self) -> int:
        """Topological depth of the schedule (max over column groups)."""
        if not self.groups:
            return 0
        return max(len(group.steps) for group in self.groups)

    @property
    def num_column_groups(self) -> int:
        """Number of reachability column groups (0 = dense only)."""
        return len(self.groups) if self.groups is not None else 0

    @property
    def active_cells(self) -> int:
        """Workspace cells actually computed, summed over column groups.

        Compare against ``num_ports * num_external`` (what a single
        unrestricted schedule would touch) for the structural-sparsity win.
        """
        if not self.groups:
            return 0
        return sum(group.num_rows * group.workspace_cols for group in self.groups)


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def topology_fingerprint(
    netlist: Netlist,
    instance_summaries: Iterable[Tuple[str, str, str, str, Tuple[str, ...], bytes]],
) -> str:
    """Key a netlist's *structure*: models, masks, connections, externals.

    ``instance_summaries`` yields, per instance **in netlist iteration
    order**, ``(name, component, registry ref, function identity, port
    names, structural mask bytes)``.  Settings are deliberately excluded: a
    settings-only change that leaves the structural masks intact reuses the
    compiled plan, while a model re-registration (new function identity,
    like the instance cache), a mask change or any rewiring produces a new
    fingerprint.  The raw component names, the full ``models`` section and
    the external ports (in order -- it defines the result's port order) are
    included so two netlists with equal fingerprints are also
    indistinguishable to structural validation.
    """
    parts: List[str] = []
    mask_parts: List[bytes] = []
    for name, component, ref, func_id, ports, mask_bytes in instance_summaries:
        parts.append(f"{name}\x1f{component}\x1f{ref}\x1f{func_id}\x1f{','.join(ports)}")
        mask_parts.append(mask_bytes)
    parts.append("\x1c")
    parts.extend(f"{key}\x1f{value}" for key, value in sorted(netlist.connections.items()))
    parts.append("\x1c")
    parts.extend(f"{name}\x1f{endpoint}" for name, endpoint in netlist.ports.items())
    parts.append("\x1c")
    parts.extend(f"{key}\x1f{value!r}" for key, value in sorted(netlist.models.items()))
    digest = hashlib.sha256("\x1e".join(parts).encode("utf-8"))
    digest.update(b"\x1d".join(mask_parts))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Compilation: structural views
# ----------------------------------------------------------------------
def _connection_sources(
    netlist: Netlist, index: Dict[Tuple[str, str], int]
) -> Dict[int, List[int]]:
    """Connection structure: per column ``j``, ports ``k`` with ``C[k, j] = 1``."""
    pairs = set()
    for key, value in netlist.connections.items():
        a = parse_endpoint(key)
        b = parse_endpoint(value)
        for endpoint, raw in ((a, key), (b, value)):
            if endpoint not in index:
                raise WrongPortError(
                    f"connection endpoint {raw!r} does not correspond to any "
                    "instance port"
                )
        ia = index[a]
        ib = index[b]
        pairs.add((ia, ib))
        pairs.add((ib, ia))
    sources: Dict[int, List[int]] = {}
    for source, column in sorted(pairs):
        sources.setdefault(column, []).append(source)
    return sources


def _injection_ports(
    netlist: Netlist, index: Dict[Tuple[str, str], int]
) -> Tuple[Tuple[str, ...], np.ndarray]:
    """External port names and the flattened instance port behind each."""
    external_names = tuple(netlist.ports)
    injection_ports = np.empty(len(external_names), dtype=int)
    for column, ext_name in enumerate(external_names):
        endpoint = parse_endpoint(netlist.ports[ext_name])
        if endpoint not in index:
            raise WrongPortError(
                f"external port {ext_name!r} maps to "
                f"{format_endpoint(*endpoint)!r} which is not an instance port"
            )
        injection_ports[column] = index[endpoint]
    return external_names, injection_ports


def _segment_extras(
    starts: np.ndarray, count: int
) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    """Rank decomposition of variable-length segment sums (see _PullLevel)."""
    sizes = np.diff(np.append(starts, count))
    extras: List[Tuple[np.ndarray, np.ndarray]] = []
    rank = 1
    while True:
        segments = np.nonzero(sizes > rank)[0]
        if segments.size == 0:
            return tuple(extras)
        extras.append((segments, starts[segments] + rank))
        rank += 1


def _component_depths(
    components: Sequence[Tuple[int, ...]],
    adjacency: Sequence[Sequence[int]],
    comp_of: np.ndarray,
) -> List[int]:
    """Longest-path depth of every component in the (topological) condensation.

    Components at the same depth cannot depend on one another -- any edge
    strictly increases depth -- so each depth forms one batchable level.
    """
    depth = [0] * len(components)
    for ci, component in enumerate(components):  # topological: dependencies first
        next_depth = depth[ci] + 1
        for port in component:
            for row in adjacency[port]:
                cj = int(comp_of[row])
                if cj != ci and depth[cj] < next_depth:
                    depth[cj] = next_depth
    return depth


# ----------------------------------------------------------------------
# Compilation: reachability column groups
# ----------------------------------------------------------------------
def _reachability(
    num_ports: int,
    num_external: int,
    injection_span_rows: Sequence[np.ndarray],
    edges: Sequence[Tuple[int, int, int]],
    cluster_components: Sequence[Tuple[int, ...]],
    depth_of_port: np.ndarray,
) -> np.ndarray:
    """Per-(port, column) structural support of the cascade workspace.

    Conservative boolean propagation of the injected seeds along the
    condensation: an unset cell is *exactly* zero for every wavelength and
    every setting compatible with the structural masks, so the restricted
    schedules drop only terms that contribute nothing.
    """
    reach = np.zeros((num_ports, num_external), dtype=bool)
    for column, rows in enumerate(injection_span_rows):
        reach[rows, column] = True
    clusters_by_depth: Dict[int, List[Tuple[int, ...]]] = {}
    for component in cluster_components:
        clusters_by_depth.setdefault(int(depth_of_port[component[0]]), []).append(
            component
        )
    cursor = 0
    num_levels = (int(depth_of_port.max()) + 1) if num_ports else 0
    for level in range(num_levels):
        while cursor < len(edges) and edges[cursor][0] == level:
            _, row, port = edges[cursor]
            reach[row] |= reach[port]
            cursor += 1
        for component in clusters_by_depth.get(level, ()):
            members = list(component)
            merged = reach[members].any(axis=0)
            reach[members] |= merged
    return reach


def _column_groups_partition(
    reach: np.ndarray, num_ports: int, columns: Sequence[int]
) -> List[List[int]]:
    """Partition ``columns`` (external column indices) by reachability pattern.

    Columns with identical reachable-port sets share a group; beyond
    :data:`_MAX_COLUMN_GROUPS` (or for tiny workspaces) groups are greedily
    merged, picking the merge that adds the least ``rows x columns`` work.
    """
    columns = list(columns)
    if not columns:
        return []
    if num_ports * len(columns) < _MIN_CELLS_FOR_GROUPING:
        return [columns]
    by_pattern: Dict[bytes, List[int]] = {}
    for column in columns:
        by_pattern.setdefault(reach[:, column].tobytes(), []).append(column)
    groups: List[Tuple[List[int], np.ndarray]] = [
        (group, reach[:, group].any(axis=1)) for group in by_pattern.values()
    ]
    while len(groups) > _MAX_COLUMN_GROUPS:
        best = None
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                cols_i, rows_i = groups[i]
                cols_j, rows_j = groups[j]
                union = rows_i | rows_j
                added = int(union.sum()) * (len(cols_i) + len(cols_j)) - (
                    int(rows_i.sum()) * len(cols_i) + int(rows_j.sum()) * len(cols_j)
                )
                if best is None or added < best[0]:
                    best = (added, i, j, union)
        _, i, j, union = best
        merged = (groups[i][0] + groups[j][0], union)
        groups = [g for k, g in enumerate(groups) if k not in (i, j)] + [merged]
    return [sorted(group) for group, _ in groups]


def _cover_columns(
    reach: np.ndarray, injection_ports: np.ndarray
) -> Tuple[List[int], List[int]]:
    """Split columns into a structurally-covering set and its mirror.

    For a symmetric (reciprocal) circuit ``S[i, j] = S[j, i]``, so a column
    ``j`` need not be computed if every entry it shares with other dropped
    columns -- including its diagonal -- is structurally zero: ``S[i, j]``
    with kept ``i`` is recovered from row ``j`` of the kept columns.  The
    dropped set must therefore be independent under "column j reaches
    external row i" (checked both ways via reachability).  Greedy: drop the
    most expensive columns first.
    """
    num_external = int(injection_ports.size)
    # pair[i, j]: injecting at column j structurally reaches external row i.
    pair = reach[injection_ports]
    activity = reach.sum(axis=0)
    dropped: List[int] = []
    for column in sorted(range(num_external), key=lambda c: -int(activity[c])):
        if pair[column, column]:
            continue
        if any(pair[column, other] or pair[other, column] for other in dropped):
            continue
        dropped.append(column)
    kept = [column for column in range(num_external) if column not in dropped]
    return kept, sorted(dropped)


def _build_group(
    columns: Sequence[int],
    reach: np.ndarray,
    edges: Sequence[Tuple[int, int, int]],
    depth_of_port: np.ndarray,
    cluster_components: Sequence[Tuple[int, ...]],
    self_loop_ports: Dict[int, Tuple[int, int, int]],
    cluster_fill_entries: Dict[Tuple[int, ...], Dict[int, List[Tuple[int, int, int, int]]]],
    spans: Sequence[Tuple[int, int]],
    owner: np.ndarray,
    partner: np.ndarray,
    injection_ports: np.ndarray,
    injection_instances: np.ndarray,
    injection_locals: np.ndarray,
    injection_span_ports: Sequence[np.ndarray],
    injection_span_locals: Sequence[np.ndarray],
    instance_stack: np.ndarray,
    instance_pos: np.ndarray,
) -> _ColumnGroup:
    """Build one column group's restricted, row-compacted level schedule."""
    columns = list(columns)
    active = reach[:, columns].any(axis=1)
    # Every external port row appears in the result, reachable or not.
    active = active.copy()
    active[injection_ports] = True
    # A cluster is solved whole: if any member is active, all are.
    for component in cluster_components:
        if active[list(component)].any():
            active[list(component)] = True

    group_edges = [edge for edge in edges if active[edge[2]]]
    receiving: Set[int] = set(edge[1] for edge in group_edges)

    # Workspace rows grouped by depth, receiving rows first (each depth's
    # pull is then a contiguous slice); inside each block, original port
    # order -- group_edges are sorted by (depth, target port, source port),
    # so their workspace target rows are sorted too.
    num_levels = (int(depth_of_port.max()) + 1) if depth_of_port.size else 0
    ports_by_depth: List[List[int]] = [[] for _ in range(num_levels)]
    for port in np.nonzero(active)[0]:
        ports_by_depth[int(depth_of_port[port])].append(int(port))
    row_of = np.full(int(depth_of_port.size), -1, dtype=int)
    row_bounds: List[Tuple[int, int]] = []
    next_row = 0
    for level_ports in ports_by_depth:
        lo = next_row
        for port in level_ports:
            if port in receiving:
                row_of[port] = next_row
                next_row += 1
        hi = next_row
        for port in level_ports:
            if port not in receiving:
                row_of[port] = next_row
                next_row += 1
        row_bounds.append((lo, hi))
    num_rows = next_row

    # Per-level structures over the group's edges.
    self_loops: List[List[_SelfLoop]] = [[] for _ in range(num_levels)]
    clusters: List[List[_ClusterSolve]] = [[] for _ in range(num_levels)]
    for port, (instance, row_local, col_local) in self_loop_ports.items():
        if active[port]:
            self_loops[int(depth_of_port[port])].append(
                _SelfLoop(
                    row=int(row_of[port]),
                    instance=instance,
                    row_local=row_local,
                    col_local=col_local,
                )
            )
    for component in cluster_components:
        if not active[component[0]]:
            continue
        fill_by_instance = cluster_fill_entries[component]
        fill = tuple(
            (
                instance,
                np.array([e[0] for e in entries], dtype=int),
                np.array([e[1] for e in entries], dtype=int),
                np.array([e[2] for e in entries], dtype=int),
                np.array([e[3] for e in entries], dtype=int),
            )
            for instance, entries in sorted(fill_by_instance.items())
        )
        clusters[int(depth_of_port[component[0]])].append(
            _ClusterSolve(rows=row_of[np.array(component, dtype=int)], fill=fill)
        )

    gather_by_stack: Dict[int, List[Tuple[int, int, int, int]]] = {}
    for position, (_, row, port) in enumerate(group_edges):
        source = int(partner[port])
        instance = int(owner[source])
        start = spans[instance][0]
        gather_by_stack.setdefault(int(instance_stack[instance]), []).append(
            (int(instance_pos[instance]), row - start, source - start, position)
        )
    coef_gathers = tuple(
        _CoefGather(
            stack=stack,
            pos=np.array([e[0] for e in entries], dtype=int),
            m_rows=np.array([e[1] for e in entries], dtype=int),
            m_cols=np.array([e[2] for e in entries], dtype=int),
            positions=np.array([e[3] for e in entries], dtype=int),
        )
        for stack, entries in sorted(gather_by_stack.items())
    )

    # Workspace rows seeded by the group's injections: levels whose
    # receiving rows are all seed-free can assign instead of accumulate.
    seeded_rows: Set[int] = set()
    for column in columns:
        seeded_rows.update(int(r) for r in row_of[injection_span_ports[column]] if r >= 0)

    steps: List[_Step] = []
    max_push_edges = 0
    cursor = 0
    for level in range(num_levels):
        lo = cursor
        while cursor < len(group_edges) and group_edges[cursor][0] == level:
            cursor += 1
        hi = cursor
        pull: Optional[_PullLevel] = None
        if hi > lo:
            target_rows = row_of[
                np.array([group_edges[i][1] for i in range(lo, hi)], dtype=int)
            ]
            src = row_of[np.array([group_edges[i][2] for i in range(lo, hi)], dtype=int)]
            unique_rows, starts = np.unique(target_rows, return_index=True)
            row_lo, row_hi = row_bounds[level]
            # The receiving rows of this depth are exactly its contiguous
            # receiving slice, in order (both sort by original port index).
            assert unique_rows.size == row_hi - row_lo
            pull = _PullLevel(
                start=lo,
                stop=hi,
                src=src,
                starts=starts,
                extra=_segment_extras(starts, hi - lo),
                row_lo=row_lo,
                row_hi=row_hi,
                single_source=unique_rows.size == hi - lo,
                assign=all(row not in seeded_rows for row in range(row_lo, row_hi)),
            )
            max_push_edges = max(max_push_edges, hi - lo)
        step = _Step(
            level=level,
            pull=pull,
            self_loops=tuple(self_loops[level]),
            clusters=tuple(clusters[level]),
        )
        if step.pull is not None or step.self_loops or step.clusters:
            steps.append(step)

    injection = tuple(
        (
            position,
            int(injection_instances[column]),
            row_of[injection_span_ports[column]],
            injection_span_locals[column],
            int(injection_locals[column]),
        )
        for position, column in enumerate(columns)
    )
    return _ColumnGroup(
        columns=np.array(columns, dtype=int),
        num_rows=num_rows,
        workspace_cols=len(columns),
        injection=injection,
        out_rows=row_of[injection_ports],
        steps=tuple(steps),
        coef_gathers=coef_gathers,
        num_edges=len(group_edges),
        max_push_edges=max_push_edges,
    )


def _stack_single_column_groups(groups: Sequence[_ColumnGroup]) -> _ColumnGroup:
    """Merge single-column groups into one block-diagonal schedule.

    Each group keeps its own (disjoint) rows, all sharing workspace column
    0: element work is unchanged, but level ``d`` of every group runs as
    *one* pull -- on chain-like fabrics this shrinks the numpy-call count
    by the group count.  Rows are renumbered so that, per level, the
    receiving rows of all groups are consecutive (group-major), matching
    the group-major concatenation of each level's edges.
    """
    num_levels = (
        max((step.level for group in groups for step in group.steps), default=-1) + 1
    )
    step_of: List[Dict[int, _Step]] = [
        {step.level: step for step in group.steps} for group in groups
    ]
    remaps = [np.full(group.num_rows, -1, dtype=int) for group in groups]
    next_row = 0
    level_bounds: List[Tuple[int, int]] = []
    for level in range(num_levels):
        lo = next_row
        for gi, group in enumerate(groups):
            step = step_of[gi].get(level)
            if step is not None and step.pull is not None:
                count = step.pull.row_hi - step.pull.row_lo
                remaps[gi][step.pull.row_lo : step.pull.row_hi] = np.arange(
                    next_row, next_row + count
                )
                next_row += count
        level_bounds.append((lo, next_row))
    for gi, group in enumerate(groups):
        unassigned = np.nonzero(remaps[gi] < 0)[0]
        remaps[gi][unassigned] = np.arange(next_row, next_row + unassigned.size)
        next_row += unassigned.size
    num_rows = next_row

    # New edge numbering: level-major, group-major inside a level.
    edge_remaps = [np.empty(group.num_edges, dtype=int) for group in groups]
    steps: List[_Step] = []
    max_push_edges = 0
    edge_cursor = 0
    for level in range(num_levels):
        pull_start = edge_cursor
        src_parts: List[np.ndarray] = []
        starts_parts: List[np.ndarray] = []
        self_loops: List[_SelfLoop] = []
        clusters: List[_ClusterSolve] = []
        single_source = True
        assign = True
        for gi, group in enumerate(groups):
            step = step_of[gi].get(level)
            if step is None:
                continue
            pull = step.pull
            if pull is not None:
                count = pull.stop - pull.start
                edge_remaps[gi][pull.start : pull.stop] = np.arange(
                    edge_cursor, edge_cursor + count
                )
                src_parts.append(remaps[gi][pull.src])
                starts_parts.append(pull.starts + (edge_cursor - pull_start))
                single_source = single_source and pull.single_source
                assign = assign and pull.assign
                edge_cursor += count
            for loop in step.self_loops:
                self_loops.append(
                    _SelfLoop(
                        row=int(remaps[gi][loop.row]),
                        instance=loop.instance,
                        row_local=loop.row_local,
                        col_local=loop.col_local,
                    )
                )
            for cluster in step.clusters:
                clusters.append(
                    _ClusterSolve(rows=remaps[gi][cluster.rows], fill=cluster.fill)
                )
        merged_pull: Optional[_PullLevel] = None
        if edge_cursor > pull_start:
            row_lo, row_hi = level_bounds[level]
            merged_starts = np.concatenate(starts_parts)
            merged_pull = _PullLevel(
                start=pull_start,
                stop=edge_cursor,
                src=np.concatenate(src_parts),
                starts=merged_starts,
                extra=_segment_extras(merged_starts, edge_cursor - pull_start),
                row_lo=row_lo,
                row_hi=row_hi,
                single_source=single_source,
                assign=assign,
            )
            max_push_edges = max(max_push_edges, edge_cursor - pull_start)
        if merged_pull is not None or self_loops or clusters:
            steps.append(
                _Step(
                    level=level,
                    pull=merged_pull,
                    self_loops=tuple(self_loops),
                    clusters=tuple(clusters),
                )
            )

    gather_by_stack: Dict[int, List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]] = {}
    for gi, group in enumerate(groups):
        for gather in group.coef_gathers:
            gather_by_stack.setdefault(gather.stack, []).append(
                (gather.pos, gather.m_rows, gather.m_cols, edge_remaps[gi][gather.positions])
            )
    coef_gathers = tuple(
        _CoefGather(
            stack=stack,
            pos=np.concatenate([e[0] for e in entries]),
            m_rows=np.concatenate([e[1] for e in entries]),
            m_cols=np.concatenate([e[2] for e in entries]),
            positions=np.concatenate([e[3] for e in entries]),
        )
        for stack, entries in sorted(gather_by_stack.items())
    )

    injection = tuple(
        (0, instance, remaps[gi][rows], local_rows, local)
        for gi, group in enumerate(groups)
        for (_, instance, rows, local_rows, local) in group.injection
    )
    return _ColumnGroup(
        columns=np.array([int(group.columns[0]) for group in groups], dtype=int),
        num_rows=num_rows,
        workspace_cols=1,
        injection=injection,
        out_rows=np.stack([remaps[gi][group.out_rows] for gi, group in enumerate(groups)]),
        steps=tuple(steps),
        coef_gathers=coef_gathers,
        num_edges=sum(group.num_edges for group in groups),
        max_push_edges=max_push_edges,
    )


def _build_schedule(
    plan: CascadePlan,
    adjacency: Sequence[Sequence[int]],
    masks: Sequence[np.ndarray],
    spans: Sequence[Tuple[int, int]],
    owner: np.ndarray,
    partner: np.ndarray,
    injection_ports: np.ndarray,
    injection_instances: np.ndarray,
    injection_locals: np.ndarray,
) -> Tuple[
    Tuple[_ColumnGroup, ...],
    Optional[Tuple[_ColumnGroup, ...]],
    Optional[np.ndarray],
    Tuple[np.ndarray, ...],
    int,
]:
    """Turn the condensation into reachability-grouped level schedules."""
    # Instances grouped by port count: one coefficient-gather stack each.
    size_to_stack: Dict[int, int] = {}
    stack_member_lists: List[List[int]] = []
    instance_stack = np.empty(len(spans), dtype=int)
    instance_pos = np.empty(len(spans), dtype=int)
    for instance, (_, size) in enumerate(spans):
        stack = size_to_stack.setdefault(size, len(stack_member_lists))
        if stack == len(stack_member_lists):
            stack_member_lists.append([])
        instance_stack[instance] = stack
        instance_pos[instance] = len(stack_member_lists[stack])
        stack_member_lists[stack].append(instance)
    stack_members = tuple(np.array(m, dtype=int) for m in stack_member_lists)
    components = plan.components
    num_ports = plan.num_ports
    num_external = int(injection_ports.size)
    comp_of = np.empty(num_ports, dtype=int)
    for ci, component in enumerate(components):
        for port in component:
            comp_of[port] = ci
    depth = _component_depths(components, adjacency, comp_of)
    depth_of_port = np.zeros(num_ports, dtype=int)
    for ci, component in enumerate(components):
        for port in component:
            depth_of_port[port] = depth[ci]
    feedback_set = set(plan.feedback)

    # Cross-component edges, sorted by (target depth, target port, source):
    # the pull order of every level, shared by all groups.
    edges: List[Tuple[int, int, int]] = []
    for ci, component in enumerate(components):
        members = set(component)
        for port in component:
            for row in adjacency[port]:
                if row not in members:
                    edges.append((depth[int(comp_of[row])], row, port))
    edges.sort()

    # Feedback structure in original port indices, shared by all groups.
    cluster_components: List[Tuple[int, ...]] = []
    cluster_fill_entries: Dict[
        Tuple[int, ...], Dict[int, List[Tuple[int, int, int, int]]]
    ] = {}
    self_loop_ports: Dict[int, Tuple[int, int, int]] = {}
    for component in components:
        if len(component) > 1:
            local = {port: position for position, port in enumerate(component)}
            fill_by_instance: Dict[int, List[Tuple[int, int, int, int]]] = {}
            for port in component:
                source = int(partner[port])
                if source < 0:
                    continue
                instance = int(owner[source])
                start = spans[instance][0]
                for row in adjacency[port]:
                    if row in local:
                        fill_by_instance.setdefault(instance, []).append(
                            (local[row], local[port], row - start, source - start)
                        )
            cluster_components.append(component)
            cluster_fill_entries[component] = fill_by_instance
        elif component in feedback_set:
            port = component[0]
            source = int(partner[port])
            instance = int(owner[source])
            start = spans[instance][0]
            self_loop_ports[port] = (instance, port - start, source - start)

    # Seed rows restricted to the structurally non-zero rows of the injected
    # device column (mask column): dead seed rows -- a device's own
    # reflection entries, typically zero -- never enter reachability, which
    # is what lets the reciprocity cover drop whole external columns.
    injection_span_ports = []
    injection_span_locals = []
    for column in range(num_external):
        instance = int(injection_instances[column])
        span_start, _ = spans[instance]
        local_rows = np.nonzero(masks[instance][:, int(injection_locals[column])])[0]
        injection_span_ports.append(span_start + local_rows)
        injection_span_locals.append(local_rows)

    reach = _reachability(
        num_ports,
        num_external,
        injection_span_ports,
        edges,
        cluster_components,
        depth_of_port,
    )

    def build_groups(columns: Sequence[int]) -> Tuple[_ColumnGroup, ...]:
        built = [
            _build_group(
                group_columns,
                reach,
                edges,
                depth_of_port,
                cluster_components,
                self_loop_ports,
                cluster_fill_entries,
                spans,
                owner,
                partner,
                injection_ports,
                injection_instances,
                injection_locals,
                injection_span_ports,
                injection_span_locals,
                instance_stack,
                instance_pos,
            )
            for group_columns in _column_groups_partition(reach, num_ports, columns)
        ]
        singles = [group for group in built if group.columns.size == 1]
        if len(singles) >= 2:
            built = [group for group in built if group.columns.size != 1]
            built.append(_stack_single_column_groups(singles))
        return tuple(built)

    groups = build_groups(range(num_external))
    kept, dropped = _cover_columns(reach, injection_ports)
    cover_groups: Optional[Tuple[_ColumnGroup, ...]] = None
    cover_mirror: Optional[np.ndarray] = None
    if dropped:
        cover_groups = build_groups(kept)
        cover_mirror = np.array(dropped, dtype=int)
    return groups, cover_groups, cover_mirror, stack_members, len(edges)


# ----------------------------------------------------------------------
# Compilation: entry point
# ----------------------------------------------------------------------
def compile_netlist(
    netlist: Netlist,
    instance_matrices: Mapping[str, SMatrix],
    *,
    masks: Optional[Sequence[np.ndarray]] = None,
    fingerprint: str = "",
    instance_refs: Tuple[str, ...] = (),
    func_identities: Tuple[str, ...] = (),
) -> CompiledCircuit:
    """Compile a netlist's structure into a reusable :class:`CompiledCircuit`.

    ``instance_matrices`` maps each instance name (in netlist iteration
    order) to its evaluated :class:`~repro.sim.sparams.SMatrix`; only the
    port names and structural masks are consumed -- the actual values stay
    out of the plan, which is what makes it reusable across settings.
    Raises :class:`~repro.netlist.errors.WrongPortError` for endpoints that
    do not resolve to an instance port (matching solver semantics on
    unvalidated netlists).
    """
    index: Dict[Tuple[str, str], int] = {}
    spans: List[Tuple[int, int]] = []
    names: List[str] = []
    start = 0
    for name, smatrix in instance_matrices.items():
        names.append(name)
        size = smatrix.num_ports
        for offset, port in enumerate(smatrix.ports):
            index[(name, port)] = start + offset
        spans.append((start, size))
        start += size
    num_ports = start
    owner = np.empty(num_ports, dtype=int)
    for instance_number, (span_start, size) in enumerate(spans):
        owner[span_start : span_start + size] = instance_number

    sources = _connection_sources(netlist, index)
    external_names, injection_ports = _injection_ports(netlist, index)
    injection_instances = (
        owner[injection_ports] if num_ports else np.empty(0, dtype=int)
    )
    injection_locals = np.array(
        [
            int(port) - spans[int(instance)][0]
            for port, instance in zip(injection_ports, injection_instances)
        ],
        dtype=int,
    )

    partner: Optional[np.ndarray] = np.full(num_ports, -1, dtype=int)
    for column, ports in sources.items():
        if len(ports) != 1:
            # Several partners on one port: only possible on unvalidated
            # netlists; the general dense formulation still applies.
            partner = None
            break
        partner[column] = ports[0]

    if masks is None:
        masks = structural_masks([instance_matrices[name].data for name in names])

    plan: Optional[CascadePlan] = None
    groups: Optional[Tuple[_ColumnGroup, ...]] = None
    cover_groups: Optional[Tuple[_ColumnGroup, ...]] = None
    cover_mirror: Optional[np.ndarray] = None
    stack_members: Tuple[np.ndarray, ...] = ()
    num_edges = 0
    if partner is not None:
        adjacency = _dependent_rows(masks, spans, owner, partner)
        plan = build_cascade_plan(masks, spans, owner, partner, adjacency)
        groups, cover_groups, cover_mirror, stack_members, num_edges = _build_schedule(
            plan,
            adjacency,
            masks,
            spans,
            owner,
            partner,
            injection_ports,
            injection_instances,
            injection_locals,
        )

    return CompiledCircuit(
        fingerprint=fingerprint,
        instance_names=tuple(names),
        instance_refs=tuple(instance_refs),
        func_identities=tuple(func_identities),
        spans=tuple(spans),
        owner=owner,
        partner=partner,
        sources=tuple(
            (column, tuple(ports)) for column, ports in sorted(sources.items())
        ),
        external_names=external_names,
        injection_ports=injection_ports,
        injection_instances=injection_instances,
        injection_locals=injection_locals,
        plan=plan,
        groups=groups,
        cover_groups=cover_groups,
        cover_mirror=cover_mirror,
        stack_members=stack_members,
        num_edges=num_edges,
        kernel_mode=resolve_kernel_mode(),
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _auto_block(group: _ColumnGroup, num_wavelengths: int) -> int:
    """Wavelength block size keeping the group workspace near the cache budget."""
    bytes_per_wavelength = 16 * group.workspace_cols * (
        group.num_rows + group.max_push_edges
    )
    if bytes_per_wavelength * num_wavelengths <= _WORKSPACE_TARGET_BYTES:
        return num_wavelengths
    return max(8, _WORKSPACE_TARGET_BYTES // max(1, bytes_per_wavelength))


def _execute_group(
    group: _ColumnGroup,
    matrices: Sequence[np.ndarray],
    stacks: Sequence[np.ndarray],
    num_wavelengths: int,
    out: np.ndarray,
    max_block: Optional[int],
    stack_positions: Optional[Sequence[np.ndarray]] = None,
    flat_stacks: Optional[Sequence[Optional[np.ndarray]]] = None,
    kern: Optional[Kernels] = None,
) -> None:
    """Run one column group's schedule, writing its columns of ``out``.

    ``stack_positions`` optionally remaps each coefficient gather's member
    positions into rows of a deduplicated stack (see
    :func:`repro.sim.batch.fuse_sample_stacks`); ``None`` means the stacks
    are member-aligned, as :func:`build_stacks` produces them.
    ``flat_stacks`` optionally holds element-major flattened views of the
    deduplicated stacks for the fast contiguous-row coefficient gather.
    ``kern`` optionally supplies the JIT dispatch table the plan was
    compiled with (see :mod:`repro.sim.kernels`); ``None`` runs the
    vectorised numpy path.  Both paths compute identical sums (the kernels
    differ only in floating-point association inside a segment, well below
    the 1e-9 equivalence budget).
    """
    num_cols = group.workspace_cols
    block = _auto_block(group, num_wavelengths)
    if max_block is not None:
        block = min(block, max(1, int(max_block)))
    block = min(block, max(1, num_wavelengths))

    # Edge coefficients for the whole grid, edge-major to align with the
    # workspace layout: coef[e] is the (W,) gain of edge e, gathered in one
    # advanced-indexing op per instance stack (or one kernel call).
    coef: Optional[np.ndarray] = None
    buffer: Optional[np.ndarray] = None
    if group.num_edges:
        coef = np.empty((group.num_edges, num_wavelengths), dtype=complex)
        for gather in group.coef_gathers:
            if stack_positions is None:
                if kern is not None:
                    kern.gather_strided(
                        coef,
                        stacks[gather.stack],
                        gather.pos,
                        gather.m_rows,
                        gather.m_cols,
                        gather.positions,
                    )
                else:
                    coef[gather.positions] = stacks[gather.stack][
                        gather.pos, :, gather.m_rows, gather.m_cols
                    ]
                continue
            pos = stack_positions[gather.stack][gather.pos]
            flat = None if flat_stacks is None else flat_stacks[gather.stack]
            if flat is not None:
                # Deduplicated stack: gather whole contiguous rows of the
                # flattened (u*n*n, W) element view -- a memcpy-speed row
                # take instead of one strided vector copy per edge.
                size = stacks[gather.stack].shape[2]
                flat_index = (pos * size + gather.m_rows) * size + gather.m_cols
                if kern is not None:
                    kern.gather_rows(coef, flat, flat_index, gather.positions)
                else:
                    coef[gather.positions] = np.take(flat, flat_index, axis=0)
            elif kern is not None:
                kern.gather_strided(
                    coef,
                    stacks[gather.stack],
                    pos,
                    gather.m_rows,
                    gather.m_cols,
                    gather.positions,
                )
            else:
                coef[gather.positions] = stacks[gather.stack][
                    pos, :, gather.m_rows, gather.m_cols
                ]
        if kern is None:
            # One reusable contribution buffer sized for the largest level
            # (the fused pull kernel needs no temporary at all).
            buffer = np.empty((group.max_push_edges, block, num_cols), dtype=complex)

    # The (rows, block, cols) workspace is port-major in the group's
    # compacted row order: per-row slabs are contiguous, and each level's
    # accumulation is a contiguous row-slice ``+=`` -- no scatter index.
    waves = np.empty((group.num_rows, block, num_cols), dtype=complex)

    for lo in range(0, num_wavelengths, block):
        hi = min(lo + block, num_wavelengths)
        width = hi - lo
        ws = waves[:, :width]
        ws.fill(0.0)
        # Seed the injected right-hand side r = S E for this block (only
        # the structurally non-zero rows of each injected device column).
        for position, instance, rows, local_rows, local in group.injection:
            ws[rows, :, position] += matrices[instance][lo:hi, local_rows, local].T

        for step in group.steps:
            pull = step.pull
            if pull is not None and kern is not None:
                # Fused gather + multiply + segment-sum: one pass over the
                # level's edges, no contribution temporary.
                kern.pull_level(
                    ws, pull.src, coef, pull.start, lo, pull.starts,
                    pull.row_lo, pull.assign,
                )
            elif pull is not None:
                count = pull.stop - pull.start
                # np.take needs a contiguous out; the preallocated buffer is
                # only contiguous at full block width (the tail block pays a
                # small fresh allocation instead).
                if width == block:
                    contributions = buffer[:count]
                else:
                    contributions = np.empty((count, width, num_cols), dtype=complex)
                np.take(ws, pull.src, axis=0, out=contributions)
                coef_slice = coef[pull.start : pull.stop, lo:hi, None]
                target = ws[pull.row_lo : pull.row_hi]
                if pull.single_source:
                    # Feed-forward common case: one in-edge per row.
                    if pull.assign:
                        # No seeds on the receiving rows: write instead of
                        # accumulate, saving a read-modify-write pass.
                        np.multiply(contributions, coef_slice, out=target)
                    else:
                        contributions *= coef_slice
                        target += contributions
                else:
                    contributions *= coef_slice
                    # Segment sums by rank decomposition (vectorised, unlike
                    # np.add.reduceat's scalar inner loop).
                    if pull.assign:
                        target[:] = contributions[pull.starts]
                    else:
                        target += contributions[pull.starts]
                    for segments, edge_positions in pull.extra:
                        target[segments] += contributions[edge_positions]
            for loop in step.self_loops:
                gain = matrices[loop.instance][lo:hi, loop.row_local, loop.col_local]
                denominator = 1.0 - gain
                bad = (denominator == 0) | ~np.isfinite(denominator)
                if np.any(bad):
                    # Unit round-trip gain: the scalar system (1-g)x = b is
                    # singular; the minimum-norm answer is x = 0.
                    _record_degradation(
                        "self_loop",
                        "singular" if np.any(denominator == 0) else "nonfinite",
                    )
                    row = ws[loop.row]
                    row /= np.where(bad, 1.0, denominator)[:, None]
                    row[bad] = 0.0
                else:
                    ws[loop.row] /= denominator[:, None]
            for cluster in step.clusters:
                size = int(cluster.rows.size)
                system = np.zeros((width, size, size), dtype=complex)
                if kern is not None:
                    for instance, sys_rows, sys_cols, m_rows, m_cols in cluster.fill:
                        kern.cluster_fill(
                            system, matrices[instance], sys_rows, sys_cols,
                            m_rows, m_cols, lo,
                        )
                else:
                    for instance, sys_rows, sys_cols, m_rows, m_cols in cluster.fill:
                        system[:, sys_rows, sys_cols] = -matrices[instance][
                            lo:hi, m_rows, m_cols
                        ]
                diagonal = np.arange(size)
                system[:, diagonal, diagonal] += 1.0
                rhs = ws[cluster.rows].transpose(1, 0, 2)
                ws[cluster.rows] = solve_with_fallback(
                    system, rhs, site="cluster"
                ).transpose(1, 0, 2)

        if group.out_rows.ndim == 2:
            # Stacked group: per column, gather its own block's external rows.
            out[lo:hi, :, group.columns] = ws[group.out_rows, :, 0].transpose(2, 1, 0)
        else:
            out[lo:hi, :, group.columns] = ws[group.out_rows, :width].transpose(1, 0, 2)


def build_stacks(
    compiled: CompiledCircuit, matrices: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Stack same-size instance matrices for the batched coefficient gathers.

    Pure function of ``matrices``; the solver memoises the result per plan
    so repeated evaluations of identical instance data skip the copies.
    """
    return [
        matrices[int(members[0])][None]
        if members.size == 1
        else np.stack([matrices[int(i)] for i in members])
        for members in compiled.stack_members
    ]


def execute_cascade(
    compiled: CompiledCircuit,
    matrices: Sequence[np.ndarray],
    num_wavelengths: int,
    max_block: Optional[int] = None,
    symmetric: bool = False,
    stacks: Optional[List[np.ndarray]] = None,
    stack_positions: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Level-batched evaluation of a compiled circuit.

    ``matrices`` holds each instance's ``(W, n, n)`` S-matrix data in
    :attr:`CompiledCircuit.instance_names` order.  Returns the external
    response of shape ``(W, E, E)``, identical (to round-off) to the dense
    backend's ``E.T @ (I - S C)^{-1} @ S @ E``.

    Each reachability column group runs its restricted schedule over
    wavelength blocks of at most ``max_block`` points (default: sized so the
    group workspace stays cache-resident); the block size bounds peak memory
    and never changes the result.  ``symmetric`` asserts that every entry of
    ``matrices`` equals its transpose (the caller's responsibility, checked
    cheaply at instance-evaluation time by the solver): the composed
    response is then symmetric too, and the reciprocity-cover schedule
    computes only a structurally-covering column subset, mirroring the rest.
    """
    if compiled.groups is None:
        raise ValueError(
            "compiled circuit does not support the cascade executor "
            "(a port is connected to several partners)"
        )
    num_external = compiled.num_external
    # Kernel dispatch was decided at compile time; unsatisfiable modes
    # (e.g. a spilled plan in a numba-less process) resolve to None = numpy.
    kern = get_kernels(compiled.kernel_mode)
    if stacks is None:
        stacks = build_stacks(compiled, matrices)
    flat_stacks: Optional[List[Optional[np.ndarray]]] = None
    if stack_positions is not None:
        # Element-major flattened copies of the deduplicated stacks power
        # the contiguous-row coefficient gather; only built where the
        # deduplication actually collapsed rows (the flatten itself is a
        # strided copy of the whole stack, which must stay small).
        flat_stacks = []
        for stack, positions in zip(stacks, stack_positions):
            rows, _, size = stack.shape[0], stack.shape[1], stack.shape[2]
            if rows * size * size <= 2 * positions.size:
                flat_stacks.append(
                    stack.transpose(0, 2, 3, 1).reshape(rows * size * size, -1)
                )
            else:
                flat_stacks.append(None)
    if symmetric and compiled.cover_groups is not None:
        out = np.zeros((num_wavelengths, num_external, num_external), dtype=complex)
        for group in compiled.cover_groups:
            _execute_group(
                group,
                matrices,
                stacks,
                num_wavelengths,
                out,
                max_block,
                stack_positions,
                flat_stacks,
                kern,
            )
        mirror = compiled.cover_mirror
        # S[i, j] = S[j, i] for the dropped columns; their remaining
        # (dropped x dropped) block is structurally zero by construction.
        # Blocked along the wavelength axis so the transpose-assign stays
        # cache-resident on long (batch-fused) grids.
        for lo in range(0, num_wavelengths, _MIRROR_BLOCK):
            hi = min(lo + _MIRROR_BLOCK, num_wavelengths)
            out[lo:hi, :, mirror] = out[lo:hi, mirror, :].transpose(0, 2, 1)
        return out
    out = np.empty((num_wavelengths, num_external, num_external), dtype=complex)
    for group in compiled.groups:
        _execute_group(
            group,
            matrices,
            stacks,
            num_wavelengths,
            out,
            max_block,
            stack_positions,
            flat_stacks,
            kern,
        )
    return out


def execute_dense(
    compiled: CompiledCircuit,
    matrices: Sequence[np.ndarray],
    num_wavelengths: int,
) -> np.ndarray:
    """Batched global solve of ``(I - S C) b = S E`` over the compiled assembly."""
    num_ports = compiled.num_ports
    block = np.zeros((num_wavelengths, num_ports, num_ports), dtype=complex)
    for data, (span_start, size) in zip(matrices, compiled.spans):
        block[:, span_start : span_start + size, span_start : span_start + size] = data

    # system = I - S @ C, built without the matmul: C is permutation-like,
    # so column j of S @ C is column partner(j) of S (zero when dangling).
    system = np.zeros_like(block)
    for column, ports in compiled.sources:
        for source in ports:
            system[:, :, column] += block[:, :, source]
    np.negative(system, out=system)
    diagonal = np.arange(num_ports)
    system[:, diagonal, diagonal] += 1.0

    # rhs = S @ E: E's columns are one-hot on the injected instance ports.
    rhs = block[:, :, compiled.injection_ports]
    interior = solve_with_fallback(system, rhs, site="dense")
    # external = E.T @ interior: a row gather for the same reason.
    return interior[:, compiled.injection_ports, :]
