"""Model registry: the library of built-in devices a netlist may reference.

The paper's system prompt (Fig. 3) contains an "API document" section that
lists every built-in device together with its ports and parameters, and the
restrictions forbid using any model not in that list ("Use undefined models"
is the first failure type of Table II).  The registry is the single source of
truth for both the simulator and the generated API document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from . import models as _models
from .sparams import SMatrix

__all__ = ["ModelInfo", "ModelRegistry", "default_registry", "UnknownModelError"]

ModelFunc = Callable[..., SMatrix]


class UnknownModelError(KeyError):
    """Raised when a netlist references a model that is not registered."""


@dataclass(frozen=True)
class ModelInfo:
    """Metadata describing one built-in device model.

    Attributes
    ----------
    name:
        The reference name used in the ``models`` section of a netlist.
    func:
        The callable producing the device's :class:`SMatrix`.
    description:
        One-line human readable description (used in the API document).
    input_ports / output_ports:
        Port names, in order.
    parameters:
        Mapping of user-facing parameter names to their default values.
    """

    name: str
    func: ModelFunc
    description: str
    input_ports: Tuple[str, ...]
    output_ports: Tuple[str, ...]
    parameters: Mapping[str, object] = field(default_factory=dict)

    @property
    def ports(self) -> Tuple[str, ...]:
        """All ports of the device, inputs first."""
        return tuple(self.input_ports) + tuple(self.output_ports)

    def evaluate(self, wavelengths: np.ndarray, **settings: object) -> SMatrix:
        """Evaluate the model, checking that only known parameters are passed."""
        unknown = sorted(set(settings) - set(self.parameters))
        if unknown:
            raise TypeError(
                f"model {self.name!r} got unexpected settings {unknown}; "
                f"allowed parameters: {sorted(self.parameters)}"
            )
        return self.func(wavelengths, **settings)

    def api_doc_entry(self) -> str:
        """Render this model as one entry of the system-prompt API document."""
        params = ", ".join(
            f"{key} (default {value!r})" for key, value in self.parameters.items()
        )
        if not params:
            params = "none"
        return (
            f"{self.name}:\n"
            f"    description: {self.description}\n"
            f"    input ports: {', '.join(self.input_ports)}  "
            f"output ports: {', '.join(self.output_ports)}\n"
            f"    parameters: {params}"
        )


class ModelRegistry:
    """A named collection of :class:`ModelInfo` entries."""

    def __init__(self, infos: Optional[Iterable[ModelInfo]] = None) -> None:
        self._infos: Dict[str, ModelInfo] = {}
        self._version = 0
        for info in infos or ():
            self.register(info)

    def register(self, info: ModelInfo) -> None:
        """Add (or replace) a model in the registry."""
        self._infos[info.name] = info
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every :meth:`register` call.

        Content caches keyed on the registry use it to notice that a model
        was added or replaced and refresh their fingerprint.
        """
        return self._version

    def __contains__(self, name: object) -> bool:
        return name in self._infos

    def __iter__(self):
        return iter(self._infos.values())

    def __len__(self) -> int:
        return len(self._infos)

    def names(self) -> Tuple[str, ...]:
        """All registered model names, sorted."""
        return tuple(sorted(self._infos))

    def get(self, name: str) -> ModelInfo:
        """Look up a model by name, raising :class:`UnknownModelError` if absent."""
        try:
            return self._infos[name]
        except KeyError as exc:
            raise UnknownModelError(
                f"model {name!r} is not a built-in device; "
                f"available models: {list(self.names())}"
            ) from exc

    def api_document(self) -> str:
        """Render the full API document section of the system prompt."""
        return "\n".join(self.get(name).api_doc_entry() for name in self.names())

    def copy(self) -> "ModelRegistry":
        """Return a shallow copy (useful for registering custom models)."""
        return ModelRegistry(self._infos.values())


def _waveguide_like_parameters(length_default: float = 10.0) -> Dict[str, object]:
    return {
        "length": length_default,
        "neff": 2.34,
        "ng": 3.4,
        "wl0": 1.55,
        "loss_db_cm": 0.0,
    }


def default_registry() -> ModelRegistry:
    """Build the registry of built-in devices shipped with the benchmark.

    The set matches Section IV-A of the paper: "We constructed the
    S-parameters for essential devices, including waveguides, couplers, MMIs,
    MZIs, MRRs, and phase shifters", extended with the modulator and switch
    elements the interconnect / switch problems need.
    """
    infos = [
        ModelInfo(
            name="waveguide",
            func=_models.waveguide,
            description="Straight single-mode waveguide",
            input_ports=("I1",),
            output_ports=("O1",),
            parameters=_waveguide_like_parameters(),
        ),
        ModelInfo(
            name="phase_shifter",
            func=_models.phase_shifter,
            description="Phase shifter applying a static phase on top of propagation",
            input_ports=("I1",),
            output_ports=("O1",),
            parameters={**_waveguide_like_parameters(), "phase": 0.0},
        ),
        ModelInfo(
            name="coupler",
            func=_models.coupler,
            description="Directional coupler with configurable power coupling ratio",
            input_ports=("I1", "I2"),
            output_ports=("O1", "O2"),
            parameters={"coupling": 0.5},
        ),
        ModelInfo(
            name="mmi1x2",
            func=_models.mmi1x2,
            description="1x2 multimode interference splitter (50/50)",
            input_ports=("I1",),
            output_ports=("O1", "O2"),
            parameters={"loss_db": 0.0},
        ),
        ModelInfo(
            name="mmi2x1",
            func=_models.mmi2x1,
            description="2x1 multimode interference combiner",
            input_ports=("I1", "I2"),
            output_ports=("O1",),
            parameters={"loss_db": 0.0},
        ),
        ModelInfo(
            name="mmi2x2",
            func=_models.mmi2x2,
            description="2x2 multimode interference coupler (50/50)",
            input_ports=("I1", "I2"),
            output_ports=("O1", "O2"),
            parameters={"loss_db": 0.0},
        ),
        ModelInfo(
            name="mzi",
            func=_models.mzi,
            description="Mach-Zehnder interferometer with one input and one output",
            input_ports=("I1",),
            output_ports=("O1",),
            parameters={**_waveguide_like_parameters(), "delta_length": 10.0},
        ),
        ModelInfo(
            name="mzi2x2",
            func=_models.mzi2x2,
            description="2x2 Mach-Zehnder interferometer cell with internal (theta) and external (phi) phase shifters",
            input_ports=("I1", "I2"),
            output_ports=("O1", "O2"),
            parameters={
                **_waveguide_like_parameters(),
                "theta": 0.0,
                "phi": 0.0,
                "delta_length": 0.0,
            },
        ),
        ModelInfo(
            name="mrr_allpass",
            func=_models.mrr_allpass,
            description="All-pass microring resonator (notch filter)",
            input_ports=("I1",),
            output_ports=("O1",),
            parameters={
                "radius": 5.0,
                "coupling": 0.1,
                "neff": 2.34,
                "ng": 3.4,
                "wl0": 1.55,
                "loss_db_cm": 3.0,
            },
        ),
        ModelInfo(
            name="mrr_adddrop",
            func=_models.mrr_adddrop,
            description="Add/drop microring resonator (channel filter)",
            input_ports=("I1", "I2"),
            output_ports=("O1", "O2"),
            parameters={
                "radius": 5.0,
                "coupling_in": 0.1,
                "coupling_out": 0.1,
                "neff": 2.34,
                "ng": 3.4,
                "wl0": 1.55,
                "loss_db_cm": 3.0,
            },
        ),
        ModelInfo(
            name="mzm",
            func=_models.mzm,
            description="Push-pull Mach-Zehnder modulator at a static drive point",
            input_ports=("I1",),
            output_ports=("O1",),
            parameters={
                "vpi": 3.0,
                "voltage": 0.0,
                "bias_phase": 0.0,
                "length": 100.0,
                "neff": 2.34,
                "ng": 3.4,
                "wl0": 1.55,
                "loss_db_cm": 0.0,
            },
        ),
        ModelInfo(
            name="phase_modulator",
            func=_models.phase_modulator,
            description="Travelling-wave phase modulator at a static drive point",
            input_ports=("I1",),
            output_ports=("O1",),
            parameters={
                "vpi": 3.0,
                "voltage": 0.0,
                "length": 100.0,
                "neff": 2.34,
                "ng": 3.4,
                "wl0": 1.55,
                "loss_db_cm": 0.0,
            },
        ),
        ModelInfo(
            name="eam",
            func=_models.eam,
            description="Electro-absorption modulator at a static bias",
            input_ports=("I1",),
            output_ports=("O1",),
            parameters={
                "attenuation_db": 0.0,
                "length": 50.0,
                "neff": 2.34,
                "ng": 3.4,
                "wl0": 1.55,
            },
        ),
        ModelInfo(
            name="attenuator",
            func=_models.attenuator,
            description="Ideal wavelength-flat attenuator",
            input_ports=("I1",),
            output_ports=("O1",),
            parameters={"attenuation_db": 0.0},
        ),
        ModelInfo(
            name="amplifier",
            func=_models.amplifier,
            description="Ideal wavelength-flat optical amplifier",
            input_ports=("I1",),
            output_ports=("O1",),
            parameters={"gain_db": 0.0},
        ),
        ModelInfo(
            name="crossing",
            func=_models.crossing,
            description="Waveguide crossing (I1->O1 and I2->O2 without coupling)",
            input_ports=("I1", "I2"),
            output_ports=("O1", "O2"),
            parameters={"loss_db": 0.0},
        ),
        ModelInfo(
            name="switch1x2",
            func=_models.switch1x2,
            description="1x2 gate switch selecting one of two outputs",
            input_ports=("I1",),
            output_ports=("O1", "O2"),
            parameters={"state": 1, "extinction_db": 60.0},
        ),
        ModelInfo(
            name="switch2x1",
            func=_models.switch2x1,
            description="2x1 gate switch selecting one of two inputs",
            input_ports=("I1", "I2"),
            output_ports=("O1",),
            parameters={"state": 1, "extinction_db": 60.0},
        ),
        ModelInfo(
            name="switch2x2",
            func=_models.switch2x2,
            description="2x2 optical switch with bar/cross states",
            input_ports=("I1", "I2"),
            output_ports=("O1", "O2"),
            parameters={"state": "cross", "extinction_db": 60.0},
        ),
        ModelInfo(
            name="terminator",
            func=_models.terminator,
            description="Perfectly matched termination for unused ports",
            input_ports=("I1",),
            output_ports=(),
            parameters={},
        ),
    ]
    return ModelRegistry(infos)
