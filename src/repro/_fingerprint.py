"""Shared keying helpers for the simulator's and the engine's caches.

Like :mod:`repro._cache`, this lives at the package root so that
:mod:`repro.sim.circuit` and :mod:`repro.engine.fingerprint` key their cache
tiers with the *same* serialisation rules without the simulator importing the
engine package.  If either rule changes, both tiers change together.
"""

from __future__ import annotations

import json
from typing import Callable, Mapping

__all__ = ["func_identity", "settings_fingerprint"]


def func_identity(func: Callable[..., object]) -> str:
    """Stable identity string of a model function (``module.qualname``).

    Part of every cache key so a re-registered model with the same name never
    silently serves results computed by the old implementation.
    """
    return f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"


def settings_fingerprint(settings: Mapping[str, object]) -> str:
    """Canonical key for an instance's settings mapping (order independent)."""
    return json.dumps(settings, sort_keys=True, default=repr)
