"""Netlist schema, parsing and validation (the paper's JSON netlist format)."""

from .errors import (
    ERROR_CLASSES,
    BadComponentNameError,
    BoundIOPortError,
    DanglingPortError,
    DuplicateConnectionError,
    ErrorCategory,
    ExtraContentError,
    FunctionalError,
    InstancesModelsConfusedError,
    NetlistSyntaxError,
    OtherSyntaxError,
    PICBenchError,
    UndefinedModelError,
    WrongPortCountError,
    WrongPortError,
)
from .compose import compose_netlists, prefix_netlist, subcircuit_port
from .parser import extract_json_object, parse_netlist_dict, parse_netlist_text
from .schema import Instance, Netlist, format_endpoint, parse_endpoint
from .validation import PortSpec, collect_violations, validate_netlist

__all__ = [
    "Netlist",
    "Instance",
    "parse_endpoint",
    "format_endpoint",
    "prefix_netlist",
    "compose_netlists",
    "subcircuit_port",
    "parse_netlist_text",
    "parse_netlist_dict",
    "extract_json_object",
    "PortSpec",
    "validate_netlist",
    "collect_violations",
    "ErrorCategory",
    "PICBenchError",
    "NetlistSyntaxError",
    "FunctionalError",
    "UndefinedModelError",
    "BoundIOPortError",
    "InstancesModelsConfusedError",
    "ExtraContentError",
    "DuplicateConnectionError",
    "DanglingPortError",
    "WrongPortCountError",
    "WrongPortError",
    "BadComponentNameError",
    "OtherSyntaxError",
    "ERROR_CLASSES",
]
