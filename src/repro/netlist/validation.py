"""Structural netlist validation implementing the Table II failure taxonomy.

:func:`validate_netlist` checks a parsed :class:`~repro.netlist.schema.Netlist`
against a model registry and (optionally) a port specification, raising the
most specific :class:`~repro.netlist.errors.PICBenchError` subclass for the
first problem it finds.  :func:`collect_violations` returns *all* problems,
which is useful for diagnostics and for the error-breakdown ablation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .errors import (
    BadComponentNameError,
    BoundIOPortError,
    DanglingPortError,
    DuplicateConnectionError,
    InstancesModelsConfusedError,
    NetlistSyntaxError,
    OtherSyntaxError,
    UndefinedModelError,
    WrongPortCountError,
    WrongPortError,
)
from .schema import Netlist, parse_endpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.registry import ModelRegistry

__all__ = ["PortSpec", "validate_netlist", "collect_violations"]

_VALID_INSTANCE_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9]*$")


@dataclass(frozen=True)
class PortSpec:
    """Expected number of external input and output ports of a design."""

    num_inputs: int
    num_outputs: int

    def describe(self) -> str:
        """Human readable summary used in error messages."""
        return f"{self.num_inputs} input port(s) and {self.num_outputs} output port(s)"


def _check_instance_names(netlist: Netlist, errors: List[NetlistSyntaxError]) -> None:
    if not netlist.instances:
        errors.append(OtherSyntaxError("the netlist declares no instances"))
        return
    for name in netlist.instances:
        if "," in name:
            errors.append(
                BadComponentNameError(f"instance name {name!r} must not contain commas")
            )
        elif not _VALID_INSTANCE_NAME_RE.match(name):
            errors.append(
                BadComponentNameError(
                    f"instance name {name!r} is invalid; names must be alphanumeric "
                    "and must not contain underscores"
                )
            )


def _check_models_section(
    netlist: Netlist, registry: ModelRegistry, errors: List[NetlistSyntaxError]
) -> None:
    components_in_use = {inst.component for inst in netlist.instances.values()}

    # Detect an inverted models section: keys are registry references while the
    # values are the component types the instances actually use.
    inverted_hits = sum(
        1
        for key, value in netlist.models.items()
        if key in registry and isinstance(value, str) and value in components_in_use
        and key not in components_in_use
    )
    if netlist.models and inverted_hits == len(netlist.models) and inverted_hits > 0:
        errors.append(
            InstancesModelsConfusedError(
                "the models section appears inverted: entries must map "
                "'<component>': '<ref>' where <component> is the type used in "
                "instances and <ref> is a built-in model name"
            )
        )
        return

    for component, ref in netlist.models.items():
        if not isinstance(ref, str):
            errors.append(
                InstancesModelsConfusedError(
                    f"models entry {component!r} must map to a built-in model name "
                    f"string, got {ref!r}"
                )
            )
        elif ref not in registry:
            errors.append(
                UndefinedModelError(
                    f"models entry {component!r} references unknown model {ref!r}; "
                    f"available models: {list(registry.names())}"
                )
            )

    for name, inst in netlist.instances.items():
        if inst.component in netlist.models:
            continue
        if inst.component in registry:
            # Implicit model reference (component name equals a built-in model):
            # accepted, as SAX also resolves these directly.
            continue
        errors.append(
            UndefinedModelError(
                f"instance {name!r} uses component {inst.component!r} which is neither "
                "declared in the models section nor a built-in device"
            )
        )


def _ports_of_instance(
    netlist: Netlist, registry: ModelRegistry, instance_name: str
) -> Optional[Tuple[str, ...]]:
    """Return the port tuple of an instance, or None when it cannot be resolved."""
    inst = netlist.instances.get(instance_name)
    if inst is None:
        return None
    ref = netlist.models.get(inst.component, inst.component)
    if not isinstance(ref, str) or ref not in registry:
        return None
    return registry.get(ref).ports


def _check_endpoint(
    netlist: Netlist,
    registry: ModelRegistry,
    endpoint: str,
    context: str,
    errors: List[NetlistSyntaxError],
) -> Optional[Tuple[str, str]]:
    """Validate one ``instance,port`` endpoint; return the parsed pair if usable."""
    try:
        instance_name, port = parse_endpoint(endpoint)
    except OtherSyntaxError as exc:
        errors.append(OtherSyntaxError(f"{context}: {exc.detail}"))
        return None
    if instance_name not in netlist.instances:
        errors.append(
            DanglingPortError(
                f"{context}: instance {instance_name!r} does not exist in the netlist; "
                "do not introduce arbitrary or unused instance names"
            )
        )
        return None
    ports = _ports_of_instance(netlist, registry, instance_name)
    if ports is not None and port not in ports:
        errors.append(
            WrongPortError(
                f"{context}: instance {instance_name!r} does not contain port {port!r}. "
                f"Available ports: {list(ports)}"
            )
        )
        return None
    return instance_name, port


def _check_connections(
    netlist: Netlist, registry: ModelRegistry, errors: List[NetlistSyntaxError]
) -> None:
    seen: Dict[Tuple[str, str], str] = {}
    exposed = set()
    for ext_name, endpoint in netlist.ports.items():
        try:
            exposed.add(parse_endpoint(endpoint))
        except OtherSyntaxError:
            continue  # reported by _check_ports

    for key, value in netlist.connections.items():
        key_pair = _check_endpoint(netlist, registry, key, f"connection key {key!r}", errors)
        value_pair = _check_endpoint(
            netlist, registry, value, f"connection value {value!r}", errors
        )
        for pair, raw in ((key_pair, key), (value_pair, value)):
            if pair is None:
                continue
            if pair in seen:
                errors.append(
                    DuplicateConnectionError(
                        f"port {raw!r} is connected more than once; each port can only "
                        "be connected once"
                    )
                )
            else:
                seen[pair] = raw
            if pair in exposed:
                errors.append(
                    BoundIOPortError(
                        f"endpoint {raw!r} is exposed as a top-level port and must not "
                        "appear in any internal connection"
                    )
                )
        if key_pair is not None and value_pair is not None and key_pair == value_pair:
            errors.append(
                DuplicateConnectionError(
                    f"connection {key!r} connects a port to itself"
                )
            )


def _check_ports(
    netlist: Netlist,
    registry: ModelRegistry,
    port_spec: Optional[PortSpec],
    errors: List[NetlistSyntaxError],
) -> None:
    if not netlist.ports:
        errors.append(
            WrongPortCountError("the netlist exposes no external ports")
        )
    seen_endpoints: Dict[Tuple[str, str], str] = {}
    for ext_name, endpoint in netlist.ports.items():
        pair = _check_endpoint(
            netlist, registry, endpoint, f"external port {ext_name!r}", errors
        )
        if pair is not None:
            if pair in seen_endpoints:
                errors.append(
                    DuplicateConnectionError(
                        f"external ports {seen_endpoints[pair]!r} and {ext_name!r} map to "
                        f"the same instance port {endpoint!r}"
                    )
                )
            else:
                seen_endpoints[pair] = ext_name

    if port_spec is not None:
        num_inputs = len(netlist.external_inputs())
        num_outputs = len(netlist.external_outputs())
        unnamed = len(netlist.ports) - num_inputs - num_outputs
        if unnamed:
            errors.append(
                WrongPortCountError(
                    "external port names must start with 'I' for inputs and 'O' for "
                    f"outputs; found {unnamed} port(s) that follow neither convention"
                )
            )
        elif (num_inputs, num_outputs) != (port_spec.num_inputs, port_spec.num_outputs):
            errors.append(
                WrongPortCountError(
                    f"the design must expose {port_spec.describe()}, but the netlist "
                    f"exposes {num_inputs} input(s) and {num_outputs} output(s)"
                )
            )


def collect_violations(
    netlist: Netlist,
    registry: Optional[ModelRegistry] = None,
    port_spec: Optional[PortSpec] = None,
) -> List[NetlistSyntaxError]:
    """Return every detectable violation of the netlist rules (may be empty)."""
    from ..sim.registry import default_registry  # local import to avoid an import cycle

    registry = registry if registry is not None else default_registry()
    errors: List[NetlistSyntaxError] = []
    _check_instance_names(netlist, errors)
    _check_models_section(netlist, registry, errors)
    _check_ports(netlist, registry, port_spec, errors)
    _check_connections(netlist, registry, errors)
    return errors


def validate_netlist(
    netlist: Netlist,
    registry: Optional[ModelRegistry] = None,
    port_spec: Optional[PortSpec] = None,
) -> None:
    """Validate a netlist, raising the first (most fundamental) violation found.

    The order of checks mirrors how SAX would fail: bad names and undefined
    models are reported before connection-level problems.
    """
    violations = collect_violations(netlist, registry, port_spec)
    if violations:
        raise violations[0]
