"""Netlist data model.

The JSON format follows the schema in the paper's system prompt (Fig. 3):

.. code-block:: json

    {
      "netlist": {
        "instances": {
          "<instance_name>": "<component>",
          "<instance_name>": {"component": "<component>", "settings": {"<param>": value}}
        },
        "connections": {"<instance>,<port>": "<instance>,<port>"},
        "ports": {"<port_name>": "<instance>,<port>"}
      },
      "models": {"<component>": "<ref>"}
    }

Instance values may be either a bare component-type string or an object with
``component`` and optional ``settings``.  The ``models`` section maps every
component type used in ``instances`` to a built-in model reference.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from .errors import OtherSyntaxError

__all__ = ["Instance", "Netlist", "parse_endpoint", "format_endpoint"]


def parse_endpoint(endpoint: str) -> Tuple[str, str]:
    """Split an ``"instance,port"`` endpoint string into its two parts."""
    if not isinstance(endpoint, str):
        raise OtherSyntaxError(f"connection endpoint must be a string, got {endpoint!r}")
    parts = [p.strip() for p in endpoint.split(",")]
    if len(parts) != 2 or not all(parts):
        raise OtherSyntaxError(
            f"connection endpoint {endpoint!r} must have the form '<instance>,<port>'"
        )
    return parts[0], parts[1]


def format_endpoint(instance: str, port: str) -> str:
    """Inverse of :func:`parse_endpoint`."""
    return f"{instance},{port}"


@dataclass
class Instance:
    """One component instantiation inside a netlist."""

    component: str
    settings: Dict[str, Any] = field(default_factory=dict)

    def to_obj(self) -> Any:
        """Serialise back to the JSON form (a bare string when there are no settings)."""
        if not self.settings:
            return self.component
        return {"component": self.component, "settings": copy.deepcopy(self.settings)}

    @classmethod
    def from_obj(cls, obj: Any) -> "Instance":
        """Build an :class:`Instance` from the JSON value of the instances section."""
        if isinstance(obj, str):
            return cls(component=obj)
        if isinstance(obj, Mapping):
            if "component" not in obj:
                raise OtherSyntaxError(
                    f"instance object {obj!r} is missing the 'component' key"
                )
            component = obj["component"]
            if not isinstance(component, str):
                raise OtherSyntaxError(
                    f"instance 'component' must be a string, got {component!r}"
                )
            settings = obj.get("settings", {})
            if settings is None:
                settings = {}
            if not isinstance(settings, Mapping):
                raise OtherSyntaxError(
                    f"instance 'settings' must be an object, got {settings!r}"
                )
            extra_keys = sorted(set(obj) - {"component", "settings"})
            if extra_keys:
                raise OtherSyntaxError(
                    f"instance object has unsupported keys {extra_keys}; "
                    "only 'component' and 'settings' are allowed"
                )
            return cls(component=component, settings=dict(settings))
        raise OtherSyntaxError(
            f"instance value must be a string or an object, got {type(obj).__name__}"
        )


@dataclass
class Netlist:
    """An in-memory PIC netlist.

    Attributes
    ----------
    instances:
        Mapping of instance name to :class:`Instance`.
    connections:
        Mapping of ``"instance,port"`` endpoint to ``"instance,port"`` endpoint.
    ports:
        Mapping of external port name (e.g. ``"I1"``, ``"O1"``) to the
        ``"instance,port"`` endpoint it is attached to.
    models:
        Mapping of component type (as used by instances) to the name of a
        built-in model in the registry.
    """

    instances: Dict[str, Instance] = field(default_factory=dict)
    connections: Dict[str, str] = field(default_factory=dict)
    ports: Dict[str, str] = field(default_factory=dict)
    models: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def model_for(self, instance_name: str) -> Optional[str]:
        """Return the registry reference for an instance, or None if unmapped."""
        instance = self.instances.get(instance_name)
        if instance is None:
            return None
        return self.models.get(instance.component)

    def external_inputs(self) -> Tuple[str, ...]:
        """External port names that look like inputs (start with 'I' or 'i')."""
        return tuple(p for p in self.ports if p.upper().startswith("I"))

    def external_outputs(self) -> Tuple[str, ...]:
        """External port names that look like outputs (start with 'O' or 'o')."""
        return tuple(p for p in self.ports if p.upper().startswith("O"))

    def num_instances(self) -> int:
        """Number of component instances (a simple complexity proxy)."""
        return len(self.instances)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to the nested-dictionary JSON structure of Fig. 3."""
        return {
            "netlist": {
                "instances": {name: inst.to_obj() for name, inst in self.instances.items()},
                "connections": dict(self.connections),
                "ports": dict(self.ports),
            },
            "models": dict(self.models),
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    def copy(self) -> "Netlist":
        """Deep copy (mutation operators rely on this)."""
        return Netlist(
            instances={name: Instance(inst.component, copy.deepcopy(inst.settings))
                       for name, inst in self.instances.items()},
            connections=dict(self.connections),
            ports=dict(self.ports),
            models=dict(self.models),
        )

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "Netlist":
        """Build a :class:`Netlist` from the parsed JSON structure.

        Raises :class:`repro.netlist.errors.OtherSyntaxError` when required
        sections are missing or have the wrong shape.  Semantic checks (ports
        exist, models defined, ...) live in :mod:`repro.netlist.validation`.
        """
        if not isinstance(obj, Mapping):
            raise OtherSyntaxError(f"netlist document must be a JSON object, got {type(obj).__name__}")
        if "netlist" not in obj:
            raise OtherSyntaxError("top-level JSON object is missing the 'netlist' section")
        body = obj["netlist"]
        if not isinstance(body, Mapping):
            raise OtherSyntaxError("the 'netlist' section must be a JSON object")
        models_obj = obj.get("models", {})
        if models_obj is None:
            models_obj = {}
        if not isinstance(models_obj, Mapping):
            raise OtherSyntaxError("the 'models' section must be a JSON object")

        instances_obj = body.get("instances", {})
        connections_obj = body.get("connections", {})
        ports_obj = body.get("ports", {})
        for section_name, section in (
            ("instances", instances_obj),
            ("connections", connections_obj),
            ("ports", ports_obj),
        ):
            if not isinstance(section, Mapping):
                raise OtherSyntaxError(f"the '{section_name}' section must be a JSON object")

        instances = {
            str(name): Instance.from_obj(value) for name, value in instances_obj.items()
        }
        connections: Dict[str, str] = {}
        for key, value in connections_obj.items():
            if not isinstance(value, str):
                raise OtherSyntaxError(
                    f"connection value for {key!r} must be a string endpoint, got {value!r}"
                )
            connections[str(key)] = value
        ports: Dict[str, str] = {}
        for key, value in ports_obj.items():
            if not isinstance(value, str):
                raise OtherSyntaxError(
                    f"port mapping for {key!r} must be a string endpoint, got {value!r}"
                )
            ports[str(key)] = value
        models: Dict[str, str] = {}
        for key, value in models_obj.items():
            models[str(key)] = value  # non-string values detected by validation
        return cls(instances=instances, connections=connections, ports=ports, models=models)
