"""The PICBench error taxonomy (Table II of the paper).

Every syntax failure that the parser, validator or simulator can detect is
classified into one of the categories below.  The categories drive two parts
of the framework:

* the **error classification loop** (Section III-D): each category has an
  associated restriction sentence that is added to the system prompt, and
* the **error feedback loop** (Section III-E): the category plus the detailed
  error message is fed back to the LLM to guide the fix.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

__all__ = [
    "ErrorCategory",
    "PICBenchError",
    "NetlistSyntaxError",
    "UndefinedModelError",
    "BoundIOPortError",
    "InstancesModelsConfusedError",
    "ExtraContentError",
    "DuplicateConnectionError",
    "DanglingPortError",
    "WrongPortCountError",
    "WrongPortError",
    "BadComponentNameError",
    "OtherSyntaxError",
    "FunctionalError",
    "ERROR_CLASSES",
]


class ErrorCategory(str, Enum):
    """Failure types of Table II, plus a functional (non-syntax) category."""

    UNDEFINED_MODEL = "undefined_model"
    BOUND_IO_PORT = "bound_io_port"
    INSTANCES_MODELS_CONFUSED = "instances_models_confused"
    EXTRA_CONTENT = "extra_content"
    DUPLICATE_CONNECTION = "duplicate_connection"
    DANGLING_PORT = "dangling_port"
    WRONG_PORT_COUNT = "wrong_port_count"
    WRONG_PORT = "wrong_port"
    BAD_COMPONENT_NAME = "bad_component_name"
    OTHER_SYNTAX = "other_syntax"
    FUNCTIONAL = "functional"

    @property
    def is_syntax(self) -> bool:
        """True for every category except :attr:`FUNCTIONAL`."""
        return self is not ErrorCategory.FUNCTIONAL

    @property
    def display_name(self) -> str:
        """Human readable name matching the wording of Table II."""
        return _DISPLAY_NAMES[self]


_DISPLAY_NAMES = {
    ErrorCategory.UNDEFINED_MODEL: "Use undefined models",
    ErrorCategory.BOUND_IO_PORT: "Bind the I/O ports",
    ErrorCategory.INSTANCES_MODELS_CONFUSED: "Mess up 'Instances' and 'models' part",
    ErrorCategory.EXTRA_CONTENT: "Extra contents found in JSON",
    ErrorCategory.DUPLICATE_CONNECTION: "Duplicate connections to the same port",
    ErrorCategory.DANGLING_PORT: "Wrong connections for dangling ports",
    ErrorCategory.WRONG_PORT_COUNT: "Wrong ports number",
    ErrorCategory.WRONG_PORT: "Wrong ports",
    ErrorCategory.BAD_COMPONENT_NAME: "Wrong component name",
    ErrorCategory.OTHER_SYNTAX: "Other syntax error",
    ErrorCategory.FUNCTIONAL: "Functional error",
}


class PICBenchError(Exception):
    """Base class for every classified benchmark error.

    Attributes
    ----------
    category:
        The :class:`ErrorCategory` this error belongs to.
    detail:
        The detailed, simulator-style message fed back to the LLM.
    """

    category: ErrorCategory = ErrorCategory.OTHER_SYNTAX

    def __init__(self, detail: str, *, category: Optional[ErrorCategory] = None) -> None:
        super().__init__(detail)
        self.detail = detail
        if category is not None:
            self.category = category

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.category.display_name}: {self.detail}"


class NetlistSyntaxError(PICBenchError):
    """Base class for all syntax-level (non-functional) errors."""


class UndefinedModelError(NetlistSyntaxError):
    """A netlist references a model that is not among the built-in devices."""

    category = ErrorCategory.UNDEFINED_MODEL


class BoundIOPortError(NetlistSyntaxError):
    """A top-level I/O port endpoint also appears in an internal connection."""

    category = ErrorCategory.BOUND_IO_PORT


class InstancesModelsConfusedError(NetlistSyntaxError):
    """The ``instances`` and ``models`` sections are mixed up or inverted."""

    category = ErrorCategory.INSTANCES_MODELS_CONFUSED


class ExtraContentError(NetlistSyntaxError):
    """The response contains content besides the JSON netlist."""

    category = ErrorCategory.EXTRA_CONTENT


class DuplicateConnectionError(NetlistSyntaxError):
    """The same instance port appears in more than one connection."""

    category = ErrorCategory.DUPLICATE_CONNECTION


class DanglingPortError(NetlistSyntaxError):
    """A connection references an instance that does not exist in the netlist."""

    category = ErrorCategory.DANGLING_PORT


class WrongPortCountError(NetlistSyntaxError):
    """The number of external input/output ports does not match the spec."""

    category = ErrorCategory.WRONG_PORT_COUNT


class WrongPortError(NetlistSyntaxError):
    """A connection or port mapping references a port the instance lacks."""

    category = ErrorCategory.WRONG_PORT


class BadComponentNameError(NetlistSyntaxError):
    """An instance name violates the naming rules (e.g. contains underscores)."""

    category = ErrorCategory.BAD_COMPONENT_NAME


class OtherSyntaxError(NetlistSyntaxError):
    """Any syntax error not covered by a more specific category."""

    category = ErrorCategory.OTHER_SYNTAX


class FunctionalError(PICBenchError):
    """The design simulates but its frequency response differs from the golden one."""

    category = ErrorCategory.FUNCTIONAL


#: Mapping from category to the concrete exception class raised for it.
ERROR_CLASSES = {
    ErrorCategory.UNDEFINED_MODEL: UndefinedModelError,
    ErrorCategory.BOUND_IO_PORT: BoundIOPortError,
    ErrorCategory.INSTANCES_MODELS_CONFUSED: InstancesModelsConfusedError,
    ErrorCategory.EXTRA_CONTENT: ExtraContentError,
    ErrorCategory.DUPLICATE_CONNECTION: DuplicateConnectionError,
    ErrorCategory.DANGLING_PORT: DanglingPortError,
    ErrorCategory.WRONG_PORT_COUNT: WrongPortCountError,
    ErrorCategory.WRONG_PORT: WrongPortError,
    ErrorCategory.BAD_COMPONENT_NAME: BadComponentNameError,
    ErrorCategory.OTHER_SYNTAX: OtherSyntaxError,
    ErrorCategory.FUNCTIONAL: FunctionalError,
}
