"""Tolerant netlist parsing from raw LLM responses.

The evaluation pipeline receives free-form text from the model.  The paper's
restrictions require the result to contain *only* the JSON netlist ("Extra
contents found in JSON" is one of the Table II failure types), so the parser:

1. tries to parse the text directly as JSON;
2. if that fails but a JSON object can be located inside the text (markdown
   code fences, leading prose, trailing comments, ...), raises
   :class:`ExtraContentError` -- the content is recoverable, but the response
   violates the output-format restriction;
3. if no JSON object can be recovered at all, raises
   :class:`OtherSyntaxError`.

``parse_netlist_text(..., strict=False)`` performs the best-effort extraction
without raising for extra content, which is useful for diagnostics.
"""

from __future__ import annotations

import json
import re
from typing import Any, Optional, Tuple

from .errors import ExtraContentError, OtherSyntaxError
from .schema import Netlist

__all__ = ["parse_netlist_text", "extract_json_object", "parse_netlist_dict"]

_CODE_FENCE_RE = re.compile(r"```(?:json)?\s*(.*?)```", re.DOTALL)


def extract_json_object(text: str) -> Optional[str]:
    """Locate the first balanced top-level JSON object inside ``text``.

    Returns the candidate substring, or ``None`` when no balanced object is
    found.  Brace counting ignores braces inside JSON strings.
    """
    start = text.find("{")
    while start != -1:
        depth = 0
        in_string = False
        escaped = False
        for idx in range(start, len(text)):
            char = text[idx]
            if in_string:
                if escaped:
                    escaped = False
                elif char == "\\":
                    escaped = True
                elif char == '"':
                    in_string = False
                continue
            if char == '"':
                in_string = True
            elif char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                if depth == 0:
                    return text[start : idx + 1]
        start = text.find("{", start + 1)
    return None


def _load_json(candidate: str) -> Any:
    try:
        return json.loads(candidate)
    except json.JSONDecodeError as exc:
        raise OtherSyntaxError(f"invalid JSON: {exc}") from exc


def parse_netlist_dict(obj: Any) -> Netlist:
    """Convert an already-parsed JSON value into a :class:`Netlist`."""
    return Netlist.from_dict(obj)


def parse_netlist_text(text: str, *, strict: bool = True) -> Netlist:
    """Parse raw response text into a :class:`Netlist`.

    Parameters
    ----------
    text:
        The raw text of the ``<result>`` section of an LLM response (or any
        string expected to contain a netlist).
    strict:
        When true (the default, matching the benchmark's evaluation), any
        content besides the pure JSON object raises
        :class:`ExtraContentError`.  When false the JSON object is extracted
        silently when possible.

    Raises
    ------
    OtherSyntaxError
        When no parseable JSON netlist can be recovered at all.
    ExtraContentError
        When a netlist is recoverable but the text contains extra content
        (markdown fences, prose, comments) and ``strict`` is true.
    """
    if not isinstance(text, str) or not text.strip():
        raise OtherSyntaxError("empty response: no JSON netlist found")

    stripped = text.strip()

    # Fast path: the whole response is exactly one JSON object.
    if stripped.startswith("{") and stripped.endswith("}"):
        try:
            return parse_netlist_dict(json.loads(stripped))
        except json.JSONDecodeError:
            pass  # fall through to extraction / better error below

    # Look inside markdown code fences first, then anywhere in the text.
    candidate: Optional[str] = None
    fence_match = _CODE_FENCE_RE.search(stripped)
    if fence_match:
        candidate = extract_json_object(fence_match.group(1))
    if candidate is None:
        candidate = extract_json_object(stripped)
    if candidate is None:
        raise OtherSyntaxError(
            "no JSON object found in the response; the result section must contain "
            "exactly one JSON netlist"
        )

    netlist = parse_netlist_dict(_load_json(candidate))

    if strict and candidate.strip() != stripped:
        raise ExtraContentError(
            "the response contains content besides the JSON netlist "
            "(code fences, prose or comments); only the JSON netlist is allowed"
        )
    return netlist
