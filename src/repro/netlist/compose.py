"""Hierarchical netlist composition.

The benchmark's netlists are flat (SAX-style), but realistic designs are built
from sub-circuits: an IQ modulator inside a 64-QAM transmitter, a WDM
multiplexer and demultiplexer chained into a link, a switch cell repeated in a
fabric.  This module provides the two operations needed to work that way while
still producing flat, benchmark-compatible netlists:

``prefix_netlist``
    Rename every instance of a netlist with a prefix (keeping the
    no-underscore naming rule) so it can be merged without collisions.

``compose_netlists``
    Merge named sub-circuits into one flat netlist, wiring their *external*
    ports together and re-exporting selected ports at the top level.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from .errors import OtherSyntaxError
from .schema import Instance, Netlist, parse_endpoint

__all__ = ["prefix_netlist", "compose_netlists", "subcircuit_port"]


def _prefixed_name(prefix: str, name: str) -> str:
    """Combine ``prefix`` and ``name`` into a valid (underscore-free) instance name."""
    if not prefix:
        return name
    return f"{prefix}{name[0].upper()}{name[1:]}" if name else prefix


def prefix_netlist(netlist: Netlist, prefix: str) -> Netlist:
    """Return a copy of ``netlist`` with every instance name prefixed.

    Connections, port mappings and the models section are updated
    consistently; the external port *names* (``I1``, ``O1``, ...) are kept so
    the sub-circuit keeps its interface.
    """
    if prefix and not prefix[0].isalpha():
        raise ValueError(f"prefix must start with a letter, got {prefix!r}")
    if "_" in prefix or "," in prefix:
        raise ValueError(f"prefix must not contain underscores or commas, got {prefix!r}")

    renamed = {name: _prefixed_name(prefix, name) for name in netlist.instances}

    def remap(endpoint: str) -> str:
        instance, port = parse_endpoint(endpoint)
        if instance not in renamed:
            raise OtherSyntaxError(
                f"endpoint {endpoint!r} references unknown instance {instance!r}"
            )
        return f"{renamed[instance]},{port}"

    return Netlist(
        instances={
            renamed[name]: Instance(inst.component, dict(inst.settings))
            for name, inst in netlist.instances.items()
        },
        connections={remap(k): remap(v) for k, v in netlist.connections.items()},
        ports={name: remap(endpoint) for name, endpoint in netlist.ports.items()},
        models=dict(netlist.models),
    )


def subcircuit_port(part: str, port: str) -> str:
    """Address the external port ``port`` of sub-circuit ``part`` (``"part:port"``)."""
    return f"{part}:{port}"


def _resolve(parts: Mapping[str, Netlist], reference: str) -> str:
    """Resolve a ``"part:port"`` reference to the flat instance endpoint."""
    if ":" not in reference:
        raise OtherSyntaxError(
            f"sub-circuit port reference {reference!r} must have the form '<part>:<port>'"
        )
    part, port = reference.split(":", 1)
    if part not in parts:
        raise KeyError(f"unknown sub-circuit {part!r}; available: {sorted(parts)}")
    netlist = parts[part]
    if port not in netlist.ports:
        raise KeyError(
            f"sub-circuit {part!r} has no external port {port!r}; "
            f"available ports: {sorted(netlist.ports)}"
        )
    return netlist.ports[port]


def compose_netlists(
    parts: Mapping[str, Netlist],
    *,
    links: Mapping[str, str] | None = None,
    ports: Mapping[str, str] | None = None,
) -> Netlist:
    """Merge named sub-circuits into a single flat netlist.

    Parameters
    ----------
    parts:
        Mapping of part name to sub-circuit netlist.  Each part is prefixed
        with its name, so instance names never collide.
    links:
        Inter-part connections, both sides given as ``"part:port"`` references
        to the parts' *external* ports.
    ports:
        Top-level external ports of the composition, mapping the new port name
        to a ``"part:port"`` reference.  Sub-circuit ports that are neither
        linked nor re-exported are left dangling (allowed by the format).

    Returns
    -------
    Netlist
        A flat netlist containing every part's instances and connections, the
        requested inter-part links, the re-exported ports, and the union of
        the parts' models sections.
    """
    if not parts:
        raise ValueError("compose_netlists requires at least one sub-circuit")
    prefixed: Dict[str, Netlist] = {
        name: prefix_netlist(netlist, name) for name, netlist in parts.items()
    }

    merged = Netlist()
    for name, netlist in prefixed.items():
        overlap = set(merged.instances) & set(netlist.instances)
        if overlap:
            raise ValueError(f"instance name collision while merging {name!r}: {sorted(overlap)}")
        merged.instances.update(netlist.instances)
        merged.connections.update(netlist.connections)
        for component, ref in netlist.models.items():
            existing = merged.models.get(component)
            if existing is not None and existing != ref:
                raise ValueError(
                    f"conflicting model binding for component {component!r}: "
                    f"{existing!r} vs {ref!r}"
                )
            merged.models[component] = ref

    for left, right in (links or {}).items():
        merged.connections[_resolve(prefixed, left)] = _resolve(prefixed, right)

    for port_name, reference in (ports or {}).items():
        merged.ports[port_name] = _resolve(prefixed, reference)

    return merged
