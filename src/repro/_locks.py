"""Cross-process file locking for shared on-disk caches.

Process-sharded sweeps (:mod:`repro.engine.procpool`) point every worker at
one shared cache directory: the simulation cache's ``.npz`` artefacts and the
solver's spilled compiled plans are written by whichever worker computes them
first.  The writes themselves are atomic (temp file + ``os.replace``), so
readers can never observe a partial file -- but without coordination two
workers computing the same key race each other through the temp-write path,
doubling I/O and churning the directory with redundant temp files.

:class:`FileLock` serialises those writers with the portable ``O_EXCL``
lockfile protocol:

* ``acquire`` atomically creates ``<name>.lock`` with
  ``O_CREAT | O_EXCL`` -- exactly one process can succeed -- and writes its
  pid into the file for debuggability.
* A lock whose file is older than ``stale_timeout`` seconds is considered
  abandoned (its holder crashed between create and unlink) and is broken
  via an atomic *rename* to a waiter-unique victim name: of all the waiters
  observing the same stale lockfile, exactly one wins the rename (the rest
  get ``ENOENT`` and fall back to the create race), so takeover never
  multiplies owners.  Each lockfile carries its creator's pid plus a random
  token, and ``release`` unlinks only when the file still holds its own
  token -- a holder that was broken as stale can no longer delete the next
  owner's lock out from under it.
* ``acquire`` is best-effort by design: on timeout it returns ``False``
  rather than raising, because every caller in this codebase uses the lock
  to *suppress duplicate work* around an already-atomic write -- proceeding
  without the lock is always safe, just potentially redundant.

The lock is advisory and cooperative: it only coordinates processes that use
:class:`FileLock` on the same path.  That is exactly the sweep-worker
scenario it exists for.
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path
from types import TracebackType
from typing import Optional, Type

from .faults import fault_point

__all__ = ["FileLock"]

#: Seconds between acquisition attempts while another process holds the lock.
_POLL_INTERVAL = 0.005


class FileLock:
    """An advisory ``O_EXCL``-lockfile mutex with stale-lock takeover.

    Parameters
    ----------
    path:
        Path of the lockfile itself (by convention ``<target>.lock`` next to
        the file whose writers it serialises).
    timeout:
        Maximum seconds :meth:`acquire` waits before giving up and returning
        ``False``.  ``0`` makes acquisition a single non-blocking attempt.
    stale_timeout:
        A lockfile older than this many seconds is treated as abandoned by a
        crashed holder and is broken.  Must comfortably exceed the longest
        critical section the lock protects.
    """

    def __init__(
        self,
        path: Path | str,
        *,
        timeout: float = 10.0,
        stale_timeout: float = 60.0,
    ) -> None:
        self.path = Path(path)
        self.timeout = float(timeout)
        self.stale_timeout = float(stale_timeout)
        self._held = False
        # The lockfile's content: pid for debuggability, token for identity.
        # `release` only unlinks a file still carrying this exact token, so
        # a holder broken as stale can never delete its successor's lock.
        self._token = f"{os.getpid()}:{uuid.uuid4().hex}"

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._held

    def _try_create(self) -> bool:
        """One atomic creation attempt."""
        try:
            fault_point("lock.acquire", key=str(self.path))
            handle = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        except OSError:
            # Unwritable/removed parent (or an injected acquisition fault):
            # behave like an unacquirable lock this round; `acquire` keeps
            # retrying until its deadline, and callers ultimately degrade to
            # their (atomic) unlocked path.
            return False
        try:
            os.write(handle, f"{self._token}\n".encode("ascii"))
        except OSError:
            pass
        finally:
            os.close(handle)
        self._held = True
        return True

    def _break_if_stale(self) -> None:
        """Claim and remove the lockfile when its holder looks dead.

        The claim is an atomic rename to a waiter-unique victim path: when
        several waiters observe the same stale lockfile, exactly one rename
        succeeds and the losers fall back to the (also atomic) create race
        -- so breaking a stale lock can never yield two owners.
        """
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return  # already released (or broken by another waiter)
        if age < self.stale_timeout:
            return
        victim = self.path.with_name(f"{self.path.name}.stale-{self._token[-12:]}")
        try:
            os.rename(self.path, victim)
        except OSError:
            return  # lost the takeover race: another waiter claimed it first
        try:
            os.unlink(victim)
        except OSError:
            pass

    def acquire(self) -> bool:
        """Try to take the lock, waiting up to ``timeout`` seconds.

        Returns ``True`` on success.  ``False`` means another live process
        holds the lock for the whole window -- callers should either skip
        the duplicate work or proceed through their own atomic write path.
        """
        if self._held:
            raise RuntimeError(f"lock {str(self.path)!r} is already held")
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_create():
                return True
            self._break_if_stale()
            if time.monotonic() >= deadline:
                return False
            time.sleep(_POLL_INTERVAL)

    def release(self) -> None:
        """Release the lock (no-op when not held).

        Identity-checked: the file is unlinked only while it still carries
        this instance's token.  A holder that overstayed ``stale_timeout``
        and was broken by a waiter finds someone else's token (or no file)
        and leaves the successor's lock alone.
        """
        if not self._held:
            return
        self._held = False
        try:
            content = self.path.read_text(encoding="ascii", errors="replace")
        except OSError:
            return  # broken as stale by a waiter: nothing left to release
        if content.strip() != self._token:
            return  # the lock now belongs to a successor
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()
