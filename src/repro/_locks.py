"""Cross-process file locking for shared on-disk caches.

Process-sharded sweeps (:mod:`repro.engine.procpool`) point every worker at
one shared cache directory: the simulation cache's ``.npz`` artefacts and the
solver's spilled compiled plans are written by whichever worker computes them
first.  The writes themselves are atomic (temp file + ``os.replace``), so
readers can never observe a partial file -- but without coordination two
workers computing the same key race each other through the temp-write path,
doubling I/O and churning the directory with redundant temp files.

:class:`FileLock` serialises those writers with the portable ``O_EXCL``
lockfile protocol:

* ``acquire`` atomically creates ``<name>.lock`` with
  ``O_CREAT | O_EXCL`` -- exactly one process can succeed -- and writes its
  pid into the file for debuggability.
* A lock whose file is older than ``stale_timeout`` seconds is considered
  abandoned (its holder crashed between create and unlink) and is broken:
  the breaker unlinks it and retries the atomic create.  Stale takeover can
  race benignly -- the net effect is that at least one waiter proceeds, and
  the payload write underneath remains atomic either way.
* ``acquire`` is best-effort by design: on timeout it returns ``False``
  rather than raising, because every caller in this codebase uses the lock
  to *suppress duplicate work* around an already-atomic write -- proceeding
  without the lock is always safe, just potentially redundant.

The lock is advisory and cooperative: it only coordinates processes that use
:class:`FileLock` on the same path.  That is exactly the sweep-worker
scenario it exists for.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from types import TracebackType
from typing import Optional, Type

__all__ = ["FileLock"]

#: Seconds between acquisition attempts while another process holds the lock.
_POLL_INTERVAL = 0.005


class FileLock:
    """An advisory ``O_EXCL``-lockfile mutex with stale-lock takeover.

    Parameters
    ----------
    path:
        Path of the lockfile itself (by convention ``<target>.lock`` next to
        the file whose writers it serialises).
    timeout:
        Maximum seconds :meth:`acquire` waits before giving up and returning
        ``False``.  ``0`` makes acquisition a single non-blocking attempt.
    stale_timeout:
        A lockfile older than this many seconds is treated as abandoned by a
        crashed holder and is broken.  Must comfortably exceed the longest
        critical section the lock protects.
    """

    def __init__(
        self,
        path: Path | str,
        *,
        timeout: float = 10.0,
        stale_timeout: float = 60.0,
    ) -> None:
        self.path = Path(path)
        self.timeout = float(timeout)
        self.stale_timeout = float(stale_timeout)
        self._held = False

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._held

    def _try_create(self) -> bool:
        """One atomic creation attempt."""
        try:
            handle = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        except OSError:
            # Unwritable/removed parent: behave like an unacquirable lock;
            # callers degrade to their (atomic) unlocked path.
            return False
        try:
            os.write(handle, f"{os.getpid()}\n".encode("ascii"))
        except OSError:
            pass
        finally:
            os.close(handle)
        self._held = True
        return True

    def _break_if_stale(self) -> None:
        """Unlink the lockfile when its holder looks dead (mtime too old)."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return  # already released (or broken by another waiter)
        if age < self.stale_timeout:
            return
        try:
            self.path.unlink()
        except OSError:
            pass  # lost the takeover race: another waiter broke it first

    def acquire(self) -> bool:
        """Try to take the lock, waiting up to ``timeout`` seconds.

        Returns ``True`` on success.  ``False`` means another live process
        holds the lock for the whole window -- callers should either skip
        the duplicate work or proceed through their own atomic write path.
        """
        if self._held:
            raise RuntimeError(f"lock {str(self.path)!r} is already held")
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_create():
                return True
            self._break_if_stale()
            if time.monotonic() >= deadline:
                return False
            time.sleep(_POLL_INTERVAL)

    def release(self) -> None:
        """Release the lock (no-op when not held)."""
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:
            pass  # broken as stale by a waiter: nothing left to release

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()
