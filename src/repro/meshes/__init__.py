"""Programmable unitary meshes (Reck and Clements arrangements)."""

from .builder import mesh_netlist_from_placements
from .clements import clements_decomposition, clements_mesh_netlist, clements_topology
from .reck import reck_decomposition, reck_mesh_netlist, reck_topology
from .unitary import (
    MeshDecomposition,
    MZIPlacement,
    is_unitary_matrix,
    mesh_to_matrix,
    random_unitary,
)

__all__ = [
    "MZIPlacement",
    "MeshDecomposition",
    "random_unitary",
    "is_unitary_matrix",
    "mesh_to_matrix",
    "mesh_netlist_from_placements",
    "clements_decomposition",
    "clements_topology",
    "clements_mesh_netlist",
    "reck_decomposition",
    "reck_topology",
    "reck_mesh_netlist",
]
