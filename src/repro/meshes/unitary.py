"""Unitary-matrix utilities shared by the Reck and Clements mesh builders.

A programmable interferometer mesh implements an ``N x N`` unitary as a
product of 2x2 "MZI" blocks acting on adjacent modes plus a final diagonal
phase screen.  The block convention follows Clements et al., *Optimal design
for universal multiport interferometers*, Optica 3, 1460 (2016):

``T_mn(theta, phi)`` is the identity except on modes ``(m, m+1)`` where it is

    i * exp(i*theta/2) * [[exp(i*phi) * sin(theta/2),  cos(theta/2)],
                          [exp(i*phi) * cos(theta/2), -sin(theta/2)]]

which is exactly the transfer matrix of
:func:`repro.sim.models.mzi2x2_transfer_matrix`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..sim.models.mzi import mzi2x2_transfer_matrix

__all__ = [
    "MZIPlacement",
    "MeshDecomposition",
    "random_unitary",
    "is_unitary_matrix",
    "embed_block",
    "mesh_to_matrix",
]


@dataclass(frozen=True)
class MZIPlacement:
    """One MZI block of a mesh.

    Attributes
    ----------
    mode:
        Index ``m`` of the upper mode the block acts on (the block couples
        modes ``m`` and ``m+1``).
    theta:
        Internal phase of the MZI, in radians.
    phi:
        External input phase of the MZI, in radians.
    """

    mode: int
    theta: float
    phi: float


@dataclass(frozen=True)
class MeshDecomposition:
    """A unitary decomposed into an ordered list of MZI placements.

    ``placements[0]`` is the first block light passes through (i.e. the
    right-most factor in the matrix product).  ``output_phases`` is the final
    diagonal phase screen applied at the outputs.
    """

    size: int
    placements: Tuple[MZIPlacement, ...]
    output_phases: Tuple[float, ...]
    scheme: str

    def reconstruct(self) -> np.ndarray:
        """Multiply the blocks back together and return the implemented unitary."""
        return mesh_to_matrix(self.size, self.placements, self.output_phases)


def random_unitary(n: int, seed: int | None = None) -> np.ndarray:
    """Draw an ``n x n`` Haar-random unitary matrix."""
    rng = np.random.default_rng(seed)
    z = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
    q, r = np.linalg.qr(z)
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases[None, :]


def is_unitary_matrix(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Return True when ``matrix`` is unitary within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def embed_block(n: int, mode: int, theta: float, phi: float) -> np.ndarray:
    """Embed the 2x2 block ``T(theta, phi)`` acting on modes ``(mode, mode+1)``."""
    if not 0 <= mode < n - 1:
        raise ValueError(f"mode must be in [0, {n - 2}], got {mode}")
    block = mzi2x2_transfer_matrix(theta, phi)
    matrix = np.eye(n, dtype=complex)
    matrix[mode : mode + 2, mode : mode + 2] = block
    return matrix


def mesh_to_matrix(
    n: int,
    placements: Sequence[MZIPlacement],
    output_phases: Sequence[float] | None = None,
) -> np.ndarray:
    """Compute the unitary implemented by an ordered sequence of placements.

    ``placements[0]`` is applied to the input first, so the resulting matrix is
    ``D * T_k * ... * T_2 * T_1`` where ``D`` is the output phase screen.
    """
    matrix = np.eye(n, dtype=complex)
    for placement in placements:
        matrix = embed_block(n, placement.mode, placement.theta, placement.phi) @ matrix
    if output_phases is not None:
        phases = np.asarray(output_phases, dtype=float)
        if phases.shape != (n,):
            raise ValueError(f"output_phases must have length {n}, got {phases.shape}")
        matrix = np.diag(np.exp(1j * phases)) @ matrix
    return matrix


def _solve_null_right(a: complex, b: complex) -> Tuple[float, float]:
    """Find ``(theta, phi)`` so that right-multiplying by ``T^{-1}`` nulls ``a``.

    The nulling condition (derived from ``a * conj(T[m,m]) + b * conj(T[m,n]) = 0``)
    is ``a * exp(-1j*phi) * sin(theta/2) + b * cos(theta/2) = 0``.
    """
    if abs(a) < 1e-300:
        return np.pi, 0.0
    if abs(b) < 1e-300:
        return 0.0, 0.0
    half_theta = np.arctan2(abs(b), abs(a))
    phi = -np.angle(-b / a)
    return 2.0 * half_theta, float(phi)


def _solve_null_left(a: complex, b: complex) -> Tuple[float, float]:
    """Find ``(theta, phi)`` so that left-multiplying by ``T`` nulls the lower row.

    With ``a = U[n, k]`` and ``b = U[m, k]``, the condition
    ``exp(1j*phi) * cos(theta/2) * b = sin(theta/2) * a`` must hold.
    """
    if abs(b) < 1e-300:
        return 0.0, 0.0
    if abs(a) < 1e-300:
        return np.pi, 0.0
    half_theta = np.arctan2(abs(b), abs(a))
    phi = np.angle(a / b)
    return 2.0 * half_theta, float(phi)


def commute_inverse_through_diagonal(
    n: int, mode: int, theta: float, phi: float, diagonal: np.ndarray
) -> Tuple[np.ndarray, float, float]:
    """Rewrite ``T^{-1}(theta, phi) @ D`` as ``D' @ T(theta, phi')``.

    ``D`` is a diagonal unitary given as a 1-D array of its entries.  Returns
    ``(D' entries, theta, phi')``.  Used by the Clements decomposition to push
    the left-applied (inverse) blocks to the output side of the diagonal phase
    screen.  The identity holds because the element magnitudes of a ``T`` block
    depend only on ``theta``, so only ``phi`` and the diagonal change.
    """
    m = mode
    left = embed_block(n, m, theta, phi).conj().T @ np.diag(diagonal)
    block = left[m : m + 2, m : m + 2]
    half = theta / 2.0
    sin_h, cos_h = np.sin(half), np.cos(half)
    prefactor = 1j * np.exp(1j * half)

    # diag(d1, d2) @ T(theta, phi') has entries:
    #   [[d1 * P * e^{i phi'} * s,  d1 * P * c],
    #    [d2 * P * e^{i phi'} * c, -d2 * P * s]]        with P = i e^{i theta/2}
    if sin_h > 1e-9 and cos_h > 1e-9:
        d1 = block[0, 1] / (prefactor * cos_h)
        d2 = -block[1, 1] / (prefactor * sin_h)
        phi_new = float(np.angle(block[0, 0] / (d1 * prefactor * sin_h)))
    elif sin_h <= 1e-9:
        # theta ~ 0: the block is purely cross-coupling; phi' is a free choice.
        phi_new = 0.0
        d1 = block[0, 1] / (prefactor * cos_h)
        d2 = block[1, 0] / (prefactor * cos_h)
    else:
        # theta ~ pi: the block is purely bar-coupling; phi' is a free choice.
        phi_new = 0.0
        d1 = block[0, 0] / (prefactor * sin_h)
        d2 = -block[1, 1] / (prefactor * sin_h)

    new_diag = np.array(diagonal, dtype=complex, copy=True)
    new_diag[m] = d1
    new_diag[m + 1] = d2
    return new_diag, theta, phi_new
