"""Shared netlist construction for MZI meshes.

A mesh is an ordered sequence of :class:`~repro.meshes.unitary.MZIPlacement`
objects.  The builder walks the sequence, instantiates one ``mzi2x2`` per
placement, and chains each mode's signal path through the successive blocks.
External ports follow the benchmark's convention: inputs ``I1..In`` (top to
bottom mode order) and outputs ``O1..On``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..netlist.schema import Instance, Netlist
from .unitary import MZIPlacement

__all__ = ["mesh_netlist_from_placements"]


def mesh_netlist_from_placements(
    n: int,
    placements: Sequence[MZIPlacement],
    *,
    programmed: bool = False,
    output_phases: Optional[Sequence[float]] = None,
    arm_length: float = 0.0,
) -> Netlist:
    """Build a mesh netlist from an ordered sequence of MZI placements.

    Parameters
    ----------
    n:
        Number of optical modes (mesh size).
    placements:
        MZI blocks in the order light traverses them.
    programmed:
        When true, each ``mzi2x2`` instance carries explicit ``theta`` /
        ``phi`` settings from its placement; when false (the golden structural
        meshes of the benchmark) the instances use default settings only.
    output_phases:
        Optional per-mode output phases; when given, a ``phase_shifter`` is
        appended to every mode.  The phase-shifter setting is the negative of
        the desired phase because the device applies ``exp(-1j * phase)``.
    arm_length:
        Common arm length passed to programmed MZIs (zero keeps the
        programmed mesh wavelength-independent).
    """
    if n < 2:
        raise ValueError(f"mesh size must be at least 2, got {n}")
    for placement in placements:
        if not 0 <= placement.mode < n - 1:
            raise ValueError(
                f"placement on mode {placement.mode} is out of range for size {n}"
            )

    instances: Dict[str, Instance] = {}
    connections: Dict[str, str] = {}
    # Current open endpoint ("instance,port") of each mode; None means the mode
    # is still attached to the external input.
    frontier: List[Optional[str]] = [None] * n
    input_attachment: List[Optional[str]] = [None] * n

    for idx, placement in enumerate(placements, start=1):
        name = f"mzi{idx}"
        settings: Dict[str, object] = {}
        if programmed:
            settings = {
                "theta": float(placement.theta),
                "phi": float(placement.phi),
                "length": float(arm_length),
            }
        instances[name] = Instance("mzi2x2", settings)
        for offset, in_port in ((0, "I1"), (1, "I2")):
            mode = placement.mode + offset
            endpoint = f"{name},{in_port}"
            if frontier[mode] is None:
                input_attachment[mode] = endpoint
            else:
                connections[frontier[mode]] = endpoint
            frontier[mode] = f"{name},{'O1' if offset == 0 else 'O2'}"

    if output_phases is not None:
        phases = list(output_phases)
        if len(phases) != n:
            raise ValueError(f"output_phases must have length {n}, got {len(phases)}")
        for mode, phase in enumerate(phases):
            name = f"outps{mode + 1}"
            instances[name] = Instance(
                "phase_shifter", {"phase": float(-phase), "length": 0.0}
            )
            endpoint = f"{name},I1"
            if frontier[mode] is None:
                input_attachment[mode] = endpoint
            else:
                connections[frontier[mode]] = endpoint
            frontier[mode] = f"{name},O1"

    ports: Dict[str, str] = {}
    for mode in range(n):
        if input_attachment[mode] is None:
            raise ValueError(
                f"mode {mode} is not covered by any placement; the mesh would have "
                "a floating input"
            )
        ports[f"I{mode + 1}"] = input_attachment[mode]
    for mode in range(n):
        ports[f"O{mode + 1}"] = frontier[mode]  # type: ignore[assignment]

    models = {"mzi2x2": "mzi2x2"}
    if output_phases is not None:
        models["phase_shifter"] = "phase_shifter"
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)
