"""Clements decomposition and rectangular-mesh netlist construction.

Implements the algorithm of Clements et al., *Optimal design for universal
multiport interferometers*, Optica 3, 1460 (2016): an ``N x N`` unitary is
factored into ``N(N-1)/2`` MZI blocks arranged in a rectangle of ``N``
columns, plus a diagonal output phase screen.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.schema import Netlist
from .builder import mesh_netlist_from_placements
from .unitary import (
    MeshDecomposition,
    MZIPlacement,
    _solve_null_left,
    _solve_null_right,
    commute_inverse_through_diagonal,
    embed_block,
    is_unitary_matrix,
)

__all__ = ["clements_decomposition", "clements_topology", "clements_mesh_netlist"]


def clements_topology(n: int) -> List[int]:
    """Return the mode index of every MZI of the canonical Clements rectangle.

    The rectangle has ``n`` columns; even columns host MZIs on even mode pairs
    and odd columns on odd mode pairs.  The returned list is ordered column by
    column (the physical order light traverses the mesh).
    """
    if n < 2:
        raise ValueError(f"mesh size must be at least 2, got {n}")
    modes: List[int] = []
    for column in range(n):
        start = column % 2
        modes.extend(range(start, n - 1, 2))
    return modes


def clements_decomposition(unitary: np.ndarray, atol: float = 1e-9) -> MeshDecomposition:
    """Decompose ``unitary`` into a rectangular (Clements) MZI mesh.

    Returns a :class:`MeshDecomposition` whose ``placements`` are ordered from
    the input side to the output side; reconstructing them reproduces the
    original unitary to numerical precision.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if not is_unitary_matrix(unitary, atol=1e-6):
        raise ValueError("clements_decomposition requires a unitary matrix")
    n = unitary.shape[0]
    if n < 2:
        raise ValueError(f"mesh size must be at least 2, got {n}")

    work = unitary.copy()
    right_ops: List[Tuple[int, float, float]] = []  # applied as U @ T^{-1}
    left_ops: List[Tuple[int, float, float]] = []  # applied as T @ U

    for i in range(1, n):
        if i % 2 == 1:
            # Null elements along the anti-diagonal using right multiplications.
            for j in range(i):
                row = n - 1 - j
                col = i - 1 - j
                mode = col  # block acts on columns (col, col + 1)
                theta, phi = _solve_null_right(work[row, col], work[row, col + 1])
                inverse = embed_block(n, mode, theta, phi).conj().T
                work = work @ inverse
                right_ops.append((mode, theta, phi))
        else:
            # Null elements along the anti-diagonal using left multiplications.
            for j in range(1, i + 1):
                row = n - i + j - 1
                col = j - 1
                mode = row - 1  # block acts on rows (row - 1, row)
                theta, phi = _solve_null_left(work[row, col], work[row - 1, col])
                work = embed_block(n, mode, theta, phi) @ work
                left_ops.append((mode, theta, phi))

    diagonal = np.diag(work).copy()
    if not np.allclose(np.abs(diagonal), 1.0, atol=1e-6) or not np.allclose(
        work, np.diag(diagonal), atol=1e-6
    ):
        raise RuntimeError("Clements nulling failed to reduce the matrix to a diagonal")

    # We now have:  L_k .. L_1  U  R_1^{-1} .. R_m^{-1} = D
    # =>  U = L_1^{-1} .. L_k^{-1}  D  R_m .. R_1
    # Push every left inverse through the diagonal so it becomes a regular
    # block on the output side:  T^{-1} D = D' T'.
    transformed_left: List[Tuple[int, float, float]] = []
    for mode, theta, phi in reversed(left_ops):
        diagonal, theta_new, phi_new = commute_inverse_through_diagonal(
            n, mode, theta, phi, diagonal
        )
        transformed_left.insert(0, (mode, theta_new, phi_new))

    # Physical order (input to output): right ops in application order, then the
    # transformed left ops from innermost to outermost, then the phase screen.
    ordered: List[MZIPlacement] = [
        MZIPlacement(mode=m, theta=t, phi=p) for m, t, p in right_ops
    ]
    ordered.extend(
        MZIPlacement(mode=m, theta=t, phi=p) for m, t, p in reversed(transformed_left)
    )
    output_phases = tuple(float(a) for a in np.angle(diagonal))
    decomposition = MeshDecomposition(
        size=n,
        placements=tuple(ordered),
        output_phases=output_phases,
        scheme="clements",
    )
    if not np.allclose(decomposition.reconstruct(), unitary, atol=1e-6):
        raise RuntimeError("Clements decomposition failed verification")
    return decomposition


def clements_mesh_netlist(
    n: int,
    unitary: Optional[np.ndarray] = None,
    *,
    include_output_phases: bool = True,
) -> Netlist:
    """Build the netlist of an ``n x n`` Clements mesh.

    With ``unitary=None`` (the benchmark's golden designs) the mesh is the
    canonical rectangle with every MZI left at its default settings; otherwise
    the mesh is programmed with the phases obtained from
    :func:`clements_decomposition`.
    """
    if unitary is None:
        placements = [MZIPlacement(mode=m, theta=0.0, phi=0.0) for m in clements_topology(n)]
        return mesh_netlist_from_placements(n, placements, programmed=False)
    decomposition = clements_decomposition(np.asarray(unitary, dtype=complex))
    return mesh_netlist_from_placements(
        n,
        list(decomposition.placements),
        programmed=True,
        output_phases=decomposition.output_phases if include_output_phases else None,
    )
