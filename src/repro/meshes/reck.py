"""Reck decomposition and triangular-mesh netlist construction.

Implements the triangular interferometer arrangement of Reck et al.,
*Experimental realization of any discrete unitary operator*, PRL 73, 58
(1994), using 2x2 MZI blocks on adjacent modes.  The unitary is reduced to a
diagonal by nulling its rows from the bottom up with right-multiplied inverse
blocks, so the physical mesh is simply the nulling blocks in application
order followed by an output phase screen.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..netlist.schema import Netlist
from .builder import mesh_netlist_from_placements
from .unitary import (
    MeshDecomposition,
    MZIPlacement,
    _solve_null_right,
    embed_block,
    is_unitary_matrix,
)

__all__ = ["reck_decomposition", "reck_topology", "reck_mesh_netlist"]


def reck_topology(n: int) -> List[int]:
    """Return the mode index of every MZI of the canonical Reck triangle.

    The triangle is ordered the way the decomposition applies its blocks:
    the bottom row of the matrix is nulled first (blocks sweeping modes
    ``0 .. n-2``), then the row above (modes ``0 .. n-3``), and so on.
    """
    if n < 2:
        raise ValueError(f"mesh size must be at least 2, got {n}")
    modes: List[int] = []
    for row in range(n - 1, 0, -1):
        modes.extend(range(row))
    return modes


def reck_decomposition(unitary: np.ndarray, atol: float = 1e-9) -> MeshDecomposition:
    """Decompose ``unitary`` into a triangular (Reck) MZI mesh."""
    unitary = np.asarray(unitary, dtype=complex)
    if not is_unitary_matrix(unitary, atol=1e-6):
        raise ValueError("reck_decomposition requires a unitary matrix")
    n = unitary.shape[0]
    if n < 2:
        raise ValueError(f"mesh size must be at least 2, got {n}")

    work = unitary.copy()
    ops: List[Tuple[int, float, float]] = []
    for row in range(n - 1, 0, -1):
        for col in range(row):
            mode = col
            theta, phi = _solve_null_right(work[row, col], work[row, col + 1])
            inverse = embed_block(n, mode, theta, phi).conj().T
            work = work @ inverse
            ops.append((mode, theta, phi))

    diagonal = np.diag(work).copy()
    if not np.allclose(work, np.diag(diagonal), atol=1e-6):
        raise RuntimeError("Reck nulling failed to reduce the matrix to a diagonal")

    # U (T_1^{-1} .. T_k^{-1}) = D  =>  U = D T_k .. T_1, so the first applied
    # nulling block is also the first physical layer.
    placements = tuple(MZIPlacement(mode=m, theta=t, phi=p) for m, t, p in ops)
    output_phases = tuple(float(a) for a in np.angle(diagonal))
    decomposition = MeshDecomposition(
        size=n, placements=placements, output_phases=output_phases, scheme="reck"
    )
    if not np.allclose(decomposition.reconstruct(), unitary, atol=1e-6):
        raise RuntimeError("Reck decomposition failed verification")
    return decomposition


def reck_mesh_netlist(
    n: int,
    unitary: Optional[np.ndarray] = None,
    *,
    include_output_phases: bool = True,
) -> Netlist:
    """Build the netlist of an ``n x n`` Reck (triangular) mesh.

    With ``unitary=None`` (the benchmark's golden designs) the mesh is the
    canonical triangle with every MZI left at its default settings; otherwise
    the mesh is programmed from :func:`reck_decomposition`.
    """
    if unitary is None:
        placements = [MZIPlacement(mode=m, theta=0.0, phi=0.0) for m in reck_topology(n)]
        return mesh_netlist_from_placements(n, placements, programmed=False)
    decomposition = reck_decomposition(np.asarray(unitary, dtype=complex))
    return mesh_netlist_from_placements(
        n,
        list(decomposition.placements),
        programmed=True,
        output_phases=decomposition.output_phases if include_output_phases else None,
    )
