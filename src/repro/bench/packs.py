"""The problem-pack registry: pluggable, parametric benchmark suites.

The paper ships a fixed 24-problem benchmark (Table I).  This module turns
that closed table into an open subsystem: a :class:`ProblemPack` bundles a
named family of problems with category metadata and a parametric
``build_problems(params)`` factory, and a process-wide registry makes packs
discoverable by name (``repro.harness`` exposes them via ``--pack`` /
``--list-packs``).

Three packs are registered on import:

``core``
    The paper's 24 problems, byte-for-byte identical to the original table
    (names, order, prompts).  Every default code path still resolves to it.
``wdm-links``
    A parametric optical-interconnect pack: N-channel WDM multiplexers,
    demultiplexers and full mux-bus-demux ring-filter links generated over a
    list of channel counts and a ring-radius spacing
    (:mod:`repro.bench.problems.wdm_links`).
``variability``
    Monte-Carlo fabrication-corner problems: seeded Gaussian/uniform draws
    perturb coupler ratios, ring radii and waveguide loss of three circuit
    families, scored for yield against transmission specs; corner batches
    share topology and exercise the batched settings-axis executor
    (:mod:`repro.bench.problems.variability`).

Third-party packs register themselves with :func:`register_pack`, typically
from the module that defines their golden designs -- see
``docs/AUTHORING_PROBLEMS.md`` for a worked example.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .problem import Category, Problem

__all__ = [
    "CORE_PACK_NAME",
    "PackParams",
    "ProblemPack",
    "register_pack",
    "unregister_pack",
    "get_pack",
    "pack_names",
    "iter_packs",
    "pack_summaries",
    "iter_known_problems",
]

#: Name of the built-in pack holding the paper's 24 problems.
CORE_PACK_NAME = "core"

#: Parameter mapping handed to a pack's problem builder.
PackParams = Mapping[str, object]


@dataclass(frozen=True)
class ProblemPack:
    """One named, parametric family of benchmark problems.

    Attributes
    ----------
    name:
        Unique registry key (e.g. ``"core"``, ``"wdm-links"``).  Used to
        namespace golden-store artefacts and to select the pack on the CLI.
    title:
        Human-readable display name.
    description:
        One-paragraph summary of what the pack's problems cover; also the
        source of the pack note appended to the system prompt for non-core
        packs (:meth:`prompt_note`).
    categories:
        Category labels of the pack, in display order.  Problems may only use
        these categories; ``problems_by_category`` groups by them.
    builder:
        ``builder(params) -> Sequence[Problem]`` factory.  ``params`` is the
        pack's :attr:`default_params` merged with any caller overrides.
    default_params:
        Default generation parameters (e.g. channel counts for the WDM pack).
        The empty mapping means the pack is not parametric.
    expected_count:
        Optional invariant on the number of problems the *default* build must
        produce (the core pack pins the paper's 24).
    """

    name: str
    title: str
    description: str
    categories: Tuple[str, ...]
    builder: Callable[[PackParams], Sequence[Problem]] = field(repr=False)
    default_params: Mapping[str, object] = field(default_factory=dict)
    expected_count: Optional[int] = None

    def merged_params(self, params: Optional[PackParams] = None) -> Dict[str, object]:
        """Merge caller overrides into the default parameters.

        Unknown parameter names raise ``KeyError`` so a typo in a sweep
        configuration fails loudly instead of silently running the defaults.
        """
        merged = dict(self.default_params)
        if params:
            unknown = set(params) - set(merged)
            if unknown:
                raise KeyError(
                    f"pack {self.name!r} does not accept parameter(s) "
                    f"{sorted(unknown)}; valid parameters: {sorted(merged) or 'none'}"
                )
            merged.update(params)
        return merged

    def build_problems(self, params: Optional[PackParams] = None) -> Tuple[Problem, ...]:
        """Build the pack's problems for ``params`` (defaults when ``None``).

        Every returned problem is stamped with the pack's name, problem names
        are checked for uniqueness, categories are checked against the pack's
        declared category list, and -- for a default-parameter build -- the
        :attr:`expected_count` invariant is enforced.
        """
        merged = self.merged_params(params)
        problems = tuple(
            problem if problem.pack == self.name else replace(problem, pack=self.name)
            for problem in self.builder(merged)
        )
        names = [problem.name for problem in problems]
        if len(set(names)) != len(names):
            raise RuntimeError(f"duplicate problem names in pack {self.name!r}: {names}")
        for problem in problems:
            if problem.category not in self.categories:
                raise RuntimeError(
                    f"problem {problem.name!r} uses category {problem.category!r} "
                    f"which pack {self.name!r} does not declare; declared: "
                    f"{list(self.categories)}"
                )
        is_default_build = merged == dict(self.default_params)
        if (
            is_default_build
            and self.expected_count is not None
            and len(problems) != self.expected_count
        ):
            raise RuntimeError(
                f"pack {self.name!r} must contain {self.expected_count} problems "
                f"by default, found {len(problems)}"
            )
        return problems

    def prompt_note(self) -> str:
        """The pack section appended to the system prompt for non-core packs."""
        return (
            f"The design task belongs to the {self.title!r} benchmark pack: "
            f"{self.description}"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ProblemPack] = {}
_REGISTRY_LOCK = threading.Lock()

# Callbacks invoked with a pack name whenever that pack is (re-)registered or
# unregistered; the suite module hooks its built-suite cache in here so stale
# enumerations can never outlive a registry change.
_INVALIDATION_HOOKS: List[Callable[[str], None]] = []


def _register_invalidation_hook(hook: Callable[[str], None]) -> None:
    """Register a callback notified when a pack's registration changes."""
    _INVALIDATION_HOOKS.append(hook)


def _notify_invalidation(name: str) -> None:
    """Run every invalidation hook for ``name``."""
    for hook in _INVALIDATION_HOOKS:
        hook(name)


def register_pack(pack: ProblemPack, *, replace_existing: bool = False) -> ProblemPack:
    """Register ``pack`` under its name, returning it for chaining.

    Registering a second pack under an existing name raises ``ValueError``
    unless ``replace_existing`` is set (useful in tests and notebooks); a
    replacement also drops any cached enumeration of the old pack.
    """
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(pack.name)
        if existing is not None and not replace_existing:
            raise ValueError(
                f"a problem pack named {pack.name!r} is already registered; "
                "pass replace_existing=True to overwrite it"
            )
        _REGISTRY[pack.name] = pack
    _notify_invalidation(pack.name)
    return pack


def unregister_pack(name: str) -> None:
    """Remove a pack from the registry (the built-in packs are protected)."""
    if name in (CORE_PACK_NAME, "wdm-links", "variability"):
        raise ValueError(f"the built-in pack {name!r} cannot be unregistered")
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)
    _notify_invalidation(name)


def get_pack(name: str | ProblemPack) -> ProblemPack:
    """Look a pack up by name, raising ``KeyError`` with the available names."""
    if isinstance(name, ProblemPack):
        return name
    with _REGISTRY_LOCK:
        pack = _REGISTRY.get(name)
    if pack is None:
        raise KeyError(
            f"unknown problem pack {name!r}; available packs: {pack_names()}"
        )
    return pack


def pack_names() -> List[str]:
    """Names of every registered pack, the core pack first."""
    with _REGISTRY_LOCK:
        names = list(_REGISTRY)
    names.sort(key=lambda name: (name != CORE_PACK_NAME, name))
    return names


def iter_packs() -> List[ProblemPack]:
    """Every registered pack, in :func:`pack_names` order."""
    return [get_pack(name) for name in pack_names()]


def pack_summaries() -> List[Dict[str, object]]:
    """Lightweight per-pack summaries (used by the ``--list-packs`` CLI)."""
    summaries: List[Dict[str, object]] = []
    for pack in iter_packs():
        problems = pack.build_problems()
        summaries.append(
            {
                "name": pack.name,
                "title": pack.title,
                "num_problems": len(problems),
                "categories": list(pack.categories),
                "parametric": bool(pack.default_params),
                "description": pack.description,
            }
        )
    return summaries


def iter_known_problems() -> List[Problem]:
    """Default-parameter problems of every registered pack, core first.

    Note this only covers default builds; use
    :func:`repro.bench.suite.find_problem_by_description` to also search
    suites built with parameter overrides.
    """
    problems: List[Problem] = []
    for pack in iter_packs():
        problems.extend(pack.build_problems())
    return problems


# ----------------------------------------------------------------------
# Built-in packs
# ----------------------------------------------------------------------
def _build_core_problems(params: PackParams) -> List[Problem]:
    """Build the paper's 24 problems in Table I order (the ``core`` pack)."""
    from .problems import fundamental, interconnects, optical_computing, switches

    problems: List[Problem] = []
    problems.extend(optical_computing.build_problems())
    problems.extend(interconnects.build_problems())
    problems.extend(switches.build_problems())
    problems.extend(fundamental.build_problems())
    return problems


def _register_builtin_packs() -> None:
    """Register the built-in ``core``, ``wdm-links`` and ``variability``
    packs (idempotent)."""
    from .problems import variability, wdm_links

    register_pack(
        ProblemPack(
            name=CORE_PACK_NAME,
            title="PICBench core",
            description=(
                "The paper's 24 photonic-integrated-circuit design problems "
                "of Table I, spanning optical computing meshes, optical "
                "interconnects, optical switch fabrics and fundamental devices."
            ),
            categories=Category.ALL,
            builder=_build_core_problems,
            expected_count=24,
        ),
        replace_existing=True,
    )
    register_pack(wdm_links.make_pack(), replace_existing=True)
    register_pack(variability.make_pack(), replace_existing=True)


_register_builtin_packs()
