"""The PICBench problem suite: 24 PIC design problems with golden solutions."""

from .golden import GoldenStore, golden_response
from .problem import Category, Problem
from .suite import (
    EXPECTED_PROBLEM_COUNT,
    all_problems,
    get_problem,
    problem_names,
    problems_by_category,
    suite_summary,
)

__all__ = [
    "Category",
    "Problem",
    "GoldenStore",
    "golden_response",
    "EXPECTED_PROBLEM_COUNT",
    "all_problems",
    "get_problem",
    "problem_names",
    "problems_by_category",
    "suite_summary",
]
