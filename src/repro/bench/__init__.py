"""The PICBench problem suite: problem packs with golden solutions.

The paper's 24 problems live in the default ``core`` pack; additional packs
(built-in or third-party) register through :mod:`repro.bench.packs` and are
enumerated with the same ``all_problems`` / ``get_problem`` API.
"""

from .golden import GoldenStore, golden_response
from .packs import (
    CORE_PACK_NAME,
    ProblemPack,
    get_pack,
    iter_packs,
    pack_names,
    pack_summaries,
    register_pack,
    unregister_pack,
)
from .problem import Category, Problem
from .suite import (
    EXPECTED_PROBLEM_COUNT,
    all_problems,
    find_problem_by_description,
    get_problem,
    problem_names,
    problems_by_category,
    suite_summary,
)

__all__ = [
    "Category",
    "Problem",
    "ProblemPack",
    "CORE_PACK_NAME",
    "GoldenStore",
    "golden_response",
    "EXPECTED_PROBLEM_COUNT",
    "all_problems",
    "get_problem",
    "problem_names",
    "problems_by_category",
    "suite_summary",
    "register_pack",
    "unregister_pack",
    "get_pack",
    "pack_names",
    "iter_packs",
    "pack_summaries",
    "find_problem_by_description",
]
