"""The PICBench problem suite: all 24 problems of Table I.

The suite is the single entry point the evaluation harness and the prompt
builder use to enumerate problems, look them up by name and group them by
category.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .problem import Category, Problem
from .problems import fundamental, interconnects, optical_computing, switches

__all__ = [
    "all_problems",
    "problem_names",
    "get_problem",
    "problems_by_category",
    "suite_summary",
    "EXPECTED_PROBLEM_COUNT",
]

#: The paper's benchmark contains exactly 24 problems (Section III-B).
EXPECTED_PROBLEM_COUNT = 24

_CACHE: Optional[Tuple[Problem, ...]] = None


def all_problems() -> Tuple[Problem, ...]:
    """Return all 24 benchmark problems, in Table I order."""
    global _CACHE
    if _CACHE is None:
        problems: List[Problem] = []
        problems.extend(optical_computing.build_problems())
        problems.extend(interconnects.build_problems())
        problems.extend(switches.build_problems())
        problems.extend(fundamental.build_problems())
        names = [p.name for p in problems]
        if len(set(names)) != len(names):
            raise RuntimeError(f"duplicate problem names in the suite: {names}")
        if len(problems) != EXPECTED_PROBLEM_COUNT:
            raise RuntimeError(
                f"the suite must contain {EXPECTED_PROBLEM_COUNT} problems, "
                f"found {len(problems)}"
            )
        _CACHE = tuple(problems)
    return _CACHE


def problem_names() -> Tuple[str, ...]:
    """The names of all problems, in suite order."""
    return tuple(p.name for p in all_problems())


def get_problem(name: str) -> Problem:
    """Look a problem up by name, raising ``KeyError`` with suggestions."""
    for problem in all_problems():
        if problem.name == name:
            return problem
    raise KeyError(
        f"unknown problem {name!r}; available problems: {list(problem_names())}"
    )


def problems_by_category() -> Dict[str, Tuple[Problem, ...]]:
    """Group the suite by Table I category, preserving order."""
    grouped: Dict[str, List[Problem]] = {category: [] for category in Category.ALL}
    for problem in all_problems():
        grouped[problem.category].append(problem)
    return {category: tuple(problems) for category, problems in grouped.items()}


def suite_summary() -> List[Dict[str, object]]:
    """A lightweight summary of the suite (used to regenerate Table I)."""
    return [
        {
            "name": problem.name,
            "title": problem.title,
            "category": problem.category,
            "summary": problem.summary,
            "num_inputs": problem.port_spec.num_inputs,
            "num_outputs": problem.port_spec.num_outputs,
            "golden_instances": problem.complexity,
        }
        for problem in all_problems()
    ]
