"""Problem-suite enumeration over the pack registry.

The suite is the single entry point the evaluation harness and the prompt
builder use to enumerate problems, look them up by name and group them by
category.  Every function defaults to the ``core`` pack -- the paper's 24
problems of Table I, byte-for-byte identical to the original fixed suite --
and accepts a ``pack`` (plus optional generation ``params``) to enumerate any
registered :class:`~repro.bench.packs.ProblemPack` instead.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from .packs import (
    CORE_PACK_NAME,
    PackParams,
    ProblemPack,
    _register_invalidation_hook,
    get_pack,
    pack_names,
)
from .problem import Problem

__all__ = [
    "all_problems",
    "problem_names",
    "get_problem",
    "problems_by_category",
    "suite_summary",
    "find_problem_by_description",
    "EXPECTED_PROBLEM_COUNT",
]

#: The paper's benchmark (the ``core`` pack) contains exactly 24 problems
#: (Section III-B).  Other packs choose their own sizes.
EXPECTED_PROBLEM_COUNT = 24

# Built suites keyed by (pack name, canonical params); guarded by a lock so
# concurrent first calls from the parallel sweep scheduler cannot race on a
# half-initialised entry (the seed's single module-global _CACHE was unsafe
# under the PR 1 thread pool).
_CACHE: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Tuple[Problem, ...]] = {}
_CACHE_LOCK = threading.Lock()


def _invalidate_pack_cache(pack_name: str) -> None:
    """Drop every cached suite of ``pack_name`` (the pack was re-registered)."""
    with _CACHE_LOCK:
        for key in [key for key in _CACHE if key[0] == pack_name]:
            del _CACHE[key]


_register_invalidation_hook(_invalidate_pack_cache)


def _cache_key(
    pack: ProblemPack, params: Optional[PackParams]
) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """Canonical, hashable cache key of one (pack, params) suite build."""
    merged = pack.merged_params(params)
    return pack.name, tuple(sorted((key, repr(value)) for key, value in merged.items()))


def all_problems(
    pack: str | ProblemPack = CORE_PACK_NAME, params: Optional[PackParams] = None
) -> Tuple[Problem, ...]:
    """Return the problems of ``pack`` (default: the 24 of Table I, in order).

    Results are cached per (pack, generation parameters).  The build runs
    outside the cache lock -- builders may themselves call :func:`get_problem`
    or :func:`all_problems` (e.g. to wrap core problems), and the lock is not
    reentrant -- so two threads racing on a cold entry may build the same
    (deterministic) suite twice, but ``setdefault`` keeps a single canonical
    tuple that every caller receives.
    """
    pack_obj = get_pack(pack)
    key = _cache_key(pack_obj, params)
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
    if cached is None:
        built = pack_obj.build_problems(params)
        with _CACHE_LOCK:
            cached = _CACHE.setdefault(key, built)
    return cached


def problem_names(
    pack: str | ProblemPack = CORE_PACK_NAME, params: Optional[PackParams] = None
) -> Tuple[str, ...]:
    """The names of all problems of ``pack``, in suite order."""
    return tuple(p.name for p in all_problems(pack, params))


def get_problem(
    name: str,
    pack: str | ProblemPack = CORE_PACK_NAME,
    params: Optional[PackParams] = None,
) -> Problem:
    """Look a problem of ``pack`` up by name, raising ``KeyError`` with suggestions."""
    for problem in all_problems(pack, params):
        if problem.name == name:
            return problem
    raise KeyError(
        f"unknown problem {name!r}; available problems: {list(problem_names(pack, params))}"
    )


def problems_by_category(
    pack: str | ProblemPack = CORE_PACK_NAME, params: Optional[PackParams] = None
) -> Dict[str, Tuple[Problem, ...]]:
    """Group the suite of ``pack`` by category, preserving the pack's order."""
    pack_obj = get_pack(pack)
    grouped: Dict[str, List[Problem]] = {category: [] for category in pack_obj.categories}
    for problem in all_problems(pack_obj, params):
        grouped[problem.category].append(problem)
    return {category: tuple(problems) for category, problems in grouped.items()}


def find_problem_by_description(text: str) -> Optional[Problem]:
    """Find the problem whose description is contained in ``text``.

    Searches every suite built so far (including suites built with parameter
    overrides -- a sweep enumerates its suite before querying any designer, so
    its problems are always present here), then falls back to the default
    build of every registered pack, core first.  Returns ``None`` when
    nothing matches.  The simulated designers use this to recognise which
    problem a conversation is about.
    """
    with _CACHE_LOCK:
        built = [problems for _, problems in sorted(_CACHE.items())]
    candidates: List[Problem] = [p for problems in built for p in problems]
    for pack in pack_names():
        candidates.extend(all_problems(pack))
    for problem in candidates:
        description = problem.description.strip()
        if description and description in text:
            return problem
    return None


def suite_summary(
    pack: str | ProblemPack = CORE_PACK_NAME, params: Optional[PackParams] = None
) -> List[Dict[str, object]]:
    """A lightweight summary of a pack's suite (used to regenerate Table I)."""
    return [
        {
            "name": problem.name,
            "title": problem.title,
            "category": problem.category,
            "summary": problem.summary,
            "pack": problem.pack,
            "num_inputs": problem.port_spec.num_inputs,
            "num_outputs": problem.port_spec.num_outputs,
            "golden_instances": problem.complexity,
        }
        for problem in all_problems(pack, params)
    ]
