"""The ``wdm-links`` parametric problem pack: N-channel WDM interconnects.

The core suite fixes WDM multiplexing at four channels (Table I).  This pack
generates mux / demux / full-link problems over a configurable list of channel
counts and a ring-radius spacing, in the spirit of fibre-link example suites
(OptiCommPy-style WDM transmission scenarios): per channel count ``N`` it
emits

* ``wdm_mux_{N}ch``   -- an N-channel add/drop microring multiplexer,
* ``wdm_demux_{N}ch`` -- the matching N-channel demultiplexer,
* ``wdm_link_{N}ch``  -- a full ring-filter link (mux -> bus waveguide ->
  demux) composed from the two, with N inputs and N outputs.

Pack parameters (see :data:`DEFAULT_PARAMS`):

``channels``
    Sequence of channel counts to generate problems for.
``base_radius`` / ``spacing``
    Radius of channel 1's microring (microns) and the radius increment
    between adjacent channels; together they stagger the channel resonances.
``bus_length``
    Length (microns) of the bus waveguide between mux and demux in the link
    problems.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ...netlist.compose import compose_netlists
from ...netlist.schema import Instance, Netlist
from ...netlist.validation import PortSpec
from ..problem import Problem

__all__ = [
    "CATEGORY_MULTIPLEXING",
    "CATEGORY_LINKS",
    "DEFAULT_PARAMS",
    "channel_radii",
    "wdm_mux_n_golden",
    "wdm_demux_n_golden",
    "wdm_link_golden",
    "build_problems",
    "make_pack",
]

#: Category labels of the pack (grouping for Table I-style listings).
CATEGORY_MULTIPLEXING = "WDM Multiplexing"
CATEGORY_LINKS = "WDM Links"

#: Default generation parameters of the pack.
DEFAULT_PARAMS: Dict[str, object] = {
    "channels": (2, 4, 8),
    "base_radius": 5.0,
    "spacing": 0.05,
    "bus_length": 500.0,
}


def channel_radii(
    num_channels: int, base_radius: float = 5.0, spacing: float = 0.05
) -> Tuple[float, ...]:
    """Microring radii (microns) of an N-channel WDM bank.

    Channel ``k`` uses ``base_radius + (k - 1) * spacing``; the changing
    round-trip length staggers the ring resonances across the band, giving
    each channel its own drop wavelength.
    """
    if num_channels < 1:
        raise ValueError(f"num_channels must be >= 1, got {num_channels}")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    return tuple(
        round(base_radius + index * spacing, 6) for index in range(num_channels)
    )


def wdm_mux_n_golden(radii: Sequence[float]) -> Netlist:
    """Golden design of an N-channel WDM multiplexer.

    Channel ``k`` enters the add port of its own add/drop microring; the
    through ports are chained into a common bus whose final through port is
    the multiplexed output (the N-channel generalisation of the core pack's
    ``wdm_mux`` golden design).
    """
    instances: Dict[str, Instance] = {}
    connections: Dict[str, str] = {}
    ports: Dict[str, str] = {}
    previous_through = None
    for index, radius in enumerate(radii, start=1):
        name = f"ring{index}"
        instances[name] = Instance("mrr_adddrop", {"radius": float(radius)})
        ports[f"I{index}"] = f"{name},I2"  # channel enters at the add port
        if previous_through is not None:
            connections[previous_through] = f"{name},I1"
        previous_through = f"{name},O1"
    ports["O1"] = previous_through  # type: ignore[assignment]
    models = {"mrr_adddrop": "mrr_adddrop"}
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def wdm_demux_n_golden(radii: Sequence[float]) -> Netlist:
    """Golden design of an N-channel WDM demultiplexer.

    The input bus passes N add/drop microrings in sequence; ring ``k`` drops
    its resonant channel onto output ``k``.
    """
    instances: Dict[str, Instance] = {}
    connections: Dict[str, str] = {}
    ports: Dict[str, str] = {}
    previous_through = None
    for index, radius in enumerate(radii, start=1):
        name = f"ring{index}"
        instances[name] = Instance("mrr_adddrop", {"radius": float(radius)})
        if previous_through is None:
            ports["I1"] = f"{name},I1"
        else:
            connections[previous_through] = f"{name},I1"
        ports[f"O{index}"] = f"{name},O2"  # dropped channel
        previous_through = f"{name},O1"
    models = {"mrr_adddrop": "mrr_adddrop"}
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def wdm_link_golden(radii: Sequence[float], bus_length: float = 500.0) -> Netlist:
    """Golden design of a full N-channel WDM ring-filter link.

    The N-channel multiplexer feeds a bus waveguide of ``bus_length`` microns
    which feeds the matching demultiplexer, so channel ``k`` entering input
    ``Ik`` reappears on output ``Ok``.
    """
    num_channels = len(radii)
    bus = Netlist(
        instances={"wg": Instance("waveguide", {"length": float(bus_length)})},
        ports={"I1": "wg,I1", "O1": "wg,O1"},
        models={"waveguide": "waveguide"},
    )
    return compose_netlists(
        {"tx": wdm_mux_n_golden(radii), "bus": bus, "rx": wdm_demux_n_golden(radii)},
        links={"tx:O1": "bus:I1", "bus:O1": "rx:I1"},
        ports={
            **{f"I{index}": f"tx:I{index}" for index in range(1, num_channels + 1)},
            **{f"O{index}": f"rx:O{index}" for index in range(1, num_channels + 1)},
        },
    )


def _radii_text(radii: Sequence[float]) -> str:
    """Comma-separated radius list used inside the problem descriptions."""
    return ", ".join(f"{radius:.2f}" for radius in radii)


def _mux_description(radii: Sequence[float]) -> str:
    """Natural-language task statement of the N-channel multiplexer."""
    n = len(radii)
    return (
        f"Create a {n}-channel WDM multiplexer with {n} inputs and one output. "
        f"Use {n} built-in add/drop microring resonators (mrr_adddrop) with radii "
        f"of {_radii_text(radii)} microns, one per channel in this order. "
        "Channel k enters the add port (I2) of ring k; the through ports of the "
        "rings are chained to form a common bus waveguide, and the through port "
        "of the last ring is the multiplexed output. Use default values for "
        "every unspecified parameter.\n"
        f"Ports: {n} inputs (I1..I{n}), 1 output (O1)."
    )


def _demux_description(radii: Sequence[float]) -> str:
    """Natural-language task statement of the N-channel demultiplexer."""
    n = len(radii)
    return (
        f"Create a {n}-channel WDM demultiplexer with one input and {n} outputs. "
        f"Use {n} built-in add/drop microring resonators (mrr_adddrop) with radii "
        f"of {_radii_text(radii)} microns, one per channel in this order. "
        "The input enters the bus port (I1) of the first ring; the through port "
        "of each ring feeds the bus port of the next ring, and the drop port "
        "(O2) of ring k provides output k. Use default values for every "
        "unspecified parameter.\n"
        f"Ports: 1 input (I1), {n} outputs (O1..O{n})."
    )


def _link_description(radii: Sequence[float], bus_length: float) -> str:
    """Natural-language task statement of the N-channel ring-filter link."""
    n = len(radii)
    return (
        f"Create a complete {n}-channel WDM ring-filter link with {n} inputs and "
        f"{n} outputs. The transmitter side is a {n}-channel multiplexer built "
        f"from add/drop microring resonators (mrr_adddrop) with radii of "
        f"{_radii_text(radii)} microns whose through ports are chained into a "
        "common bus; its multiplexed output feeds a built-in waveguide of "
        f"{bus_length:.0f} microns length, which feeds the receiver side: the "
        "matching demultiplexer with the same ring radii, where the drop port of "
        "ring k provides output k. Use default values for every unspecified "
        "parameter.\n"
        f"Ports: {n} inputs (I1..I{n}), {n} outputs (O1..O{n})."
    )


def build_problems(params: Dict[str, object]) -> List[Problem]:
    """Build the pack's problems for one parameter mapping.

    For every channel count ``N`` in ``params['channels']`` the pack emits a
    multiplexer, a demultiplexer and a full-link problem, in that order.
    """
    channels = tuple(int(n) for n in params["channels"])  # type: ignore[index]
    base_radius = float(params["base_radius"])  # type: ignore[arg-type]
    spacing = float(params["spacing"])  # type: ignore[arg-type]
    bus_length = float(params["bus_length"])  # type: ignore[arg-type]
    if not channels:
        raise ValueError("the wdm-links pack needs at least one channel count")

    problems: List[Problem] = []
    for num_channels in channels:
        radii = channel_radii(num_channels, base_radius, spacing)
        problems.append(
            Problem(
                name=f"wdm_mux_{num_channels}ch",
                title=f"WDM mux {num_channels}ch",
                category=CATEGORY_MULTIPLEXING,
                summary=f"A {num_channels}-channel WDM multiplexer",
                description=_mux_description(radii),
                golden_factory=lambda radii=radii: wdm_mux_n_golden(radii),
                port_spec=PortSpec(num_inputs=num_channels, num_outputs=1),
            )
        )
        problems.append(
            Problem(
                name=f"wdm_demux_{num_channels}ch",
                title=f"WDM demux {num_channels}ch",
                category=CATEGORY_MULTIPLEXING,
                summary=f"A {num_channels}-channel WDM demultiplexer",
                description=_demux_description(radii),
                golden_factory=lambda radii=radii: wdm_demux_n_golden(radii),
                port_spec=PortSpec(num_inputs=1, num_outputs=num_channels),
            )
        )
        problems.append(
            Problem(
                name=f"wdm_link_{num_channels}ch",
                title=f"WDM link {num_channels}ch",
                category=CATEGORY_LINKS,
                summary=f"A {num_channels}-channel WDM ring-filter link",
                description=_link_description(radii, bus_length),
                golden_factory=lambda radii=radii, bus_length=bus_length: wdm_link_golden(
                    radii, bus_length
                ),
                port_spec=PortSpec(num_inputs=num_channels, num_outputs=num_channels),
            )
        )
    return problems


def make_pack():
    """Build (but do not register) the ``wdm-links`` :class:`ProblemPack`."""
    from ..packs import ProblemPack

    return ProblemPack(
        name="wdm-links",
        title="WDM links",
        description=(
            "Parametric N-channel WDM interconnect problems: add/drop "
            "microring multiplexers, demultiplexers and full mux-bus-demux "
            "ring-filter links generated over configurable channel counts "
            "and ring-radius spacing."
        ),
        categories=(CATEGORY_MULTIPLEXING, CATEGORY_LINKS),
        builder=build_problems,
        default_params=DEFAULT_PARAMS,
    )
