"""The ``variability`` problem pack: Monte-Carlo fabrication-corner analysis.

Fabricated photonic circuits never match their nominal design: coupler power
ratios, ring radii and waveguide losses all drift with process variation,
and a design is only as good as its **yield** -- the fraction of fabrication
draws that still meets spec.  This pack turns that workload into benchmark
problems and a reusable Monte-Carlo API, both built on the batched
settings-axis executor (:meth:`repro.sim.circuit.CircuitSolver.evaluate_batch`):
a corner draw perturbs instance *settings*, never topology, so hundreds of
draws share one compiled plan and fuse into a handful of executor passes.

Three circuit families each contribute ``corners`` seeded corner problems
(the perturbed parameter values are stated exactly in the task description,
so a designer can -- and must -- reproduce that specific corner):

* ``var_mzi_cXX``  -- an unbalanced two-arm MZI from two directional
  couplers (perturbed coupling ratios) and two lossy arm waveguides
  (perturbed propagation loss),
* ``var_ring_cXX`` -- an add/drop ring filter assembled from two couplers
  and two half-ring waveguides: a genuine feedback cluster, so corner
  batches exercise the batched local solves,
* ``var_wdm_cXX``  -- a 2-channel WDM ring-filter link whose channel ring
  radii are perturbed (resonance drift, the classic WDM yield killer).

The Monte-Carlo API is independent of the problem list:

* :func:`monte_carlo_settings` draws ``S`` seeded Gaussian/uniform
  settings-override samples for any netlist (perturbing ``coupling`` /
  ``coupling_in`` / ``coupling_out``, ``radius`` and ``loss_db_cm`` keys
  wherever an instance sets them),
* :func:`monte_carlo_yield` pushes one such batch through the batched
  executor and scores every draw against a :class:`YieldSpec`.

See ``examples/monte_carlo_yield.py`` for a runnable end-to-end analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...netlist.schema import Instance, Netlist
from ...netlist.validation import PortSpec
from ...sim.batch import apply_settings
from ..problem import Problem
from .wdm_links import channel_radii, wdm_link_golden

__all__ = [
    "CATEGORY_INTERFEROMETER",
    "CATEGORY_RING",
    "CATEGORY_WDM",
    "DEFAULT_PARAMS",
    "PERTURBATION_RULES",
    "YieldSpec",
    "YieldResult",
    "perturb_settings",
    "monte_carlo_settings",
    "monte_carlo_yield",
    "interferometer_nominal",
    "ring_filter_nominal",
    "wdm_link_nominal",
    "build_problems",
    "make_pack",
]

#: Category labels of the pack (grouping for Table I-style listings).
CATEGORY_INTERFEROMETER = "Interferometer Corners"
CATEGORY_RING = "Ring Filter Corners"
CATEGORY_WDM = "WDM Corners"

#: Default generation parameters of the pack.
DEFAULT_PARAMS: Dict[str, object] = {
    "corners": 3,
    "seed": 20260728,
    "sigma_coupling": 0.02,
    "sigma_radius": 0.02,
    "sigma_loss_db_cm": 0.5,
    "distribution": "gaussian",
}

#: Perturbable settings keys: ``key -> (sigma parameter, lower clip, upper
#: clip)``.  Clipping keeps draws physical (a power coupling ratio stays in
#: ``[0, 1]``, radii and losses stay positive) without re-drawing, so the
#: draw count consumed per instance is independent of the outcome.
PERTURBATION_RULES: Dict[str, Tuple[str, Optional[float], Optional[float]]] = {
    "coupling": ("sigma_coupling", 0.0, 1.0),
    "coupling_in": ("sigma_coupling", 0.0, 1.0),
    "coupling_out": ("sigma_coupling", 0.0, 1.0),
    "radius": ("sigma_radius", 0.05, None),
    "loss_db_cm": ("sigma_loss_db_cm", 0.0, None),
}

#: Decimal places corner values are rounded to -- enough to be physically
#: meaningless, coarse enough for exact round-trips through the JSON problem
#: descriptions.
_ROUND_DIGITS = 6


def _check_distribution(distribution: str) -> str:
    """Validate the draw distribution name, returning it unchanged."""
    if distribution not in ("gaussian", "uniform"):
        raise ValueError(
            f"distribution must be 'gaussian' or 'uniform', got {distribution!r}"
        )
    return distribution


def perturb_settings(
    settings: Mapping[str, object],
    rng: np.random.Generator,
    *,
    sigma_coupling: float,
    sigma_radius: float,
    sigma_loss_db_cm: float,
    distribution: str = "gaussian",
) -> Dict[str, float]:
    """Draw perturbed values for every perturbable key of one settings dict.

    Keys not named in :data:`PERTURBATION_RULES` (and non-numeric values)
    pass through untouched -- i.e. they are absent from the returned
    overrides.  Gaussian draws use the sigma as the standard deviation;
    uniform draws span ``+-sigma``.  Draws are consumed in settings-dict
    iteration order, so a fixed ``rng`` state yields a fixed corner.
    """
    sigmas = {
        "sigma_coupling": float(sigma_coupling),
        "sigma_radius": float(sigma_radius),
        "sigma_loss_db_cm": float(sigma_loss_db_cm),
    }
    _check_distribution(distribution)
    overrides: Dict[str, float] = {}
    for key, value in settings.items():
        rule = PERTURBATION_RULES.get(key)
        if rule is None or isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        sigma_name, lower, upper = rule
        sigma = sigmas[sigma_name]
        if sigma <= 0.0:
            continue
        if distribution == "gaussian":
            delta = float(rng.normal(0.0, sigma))
        else:
            delta = float(rng.uniform(-sigma, sigma))
        drawn = float(value) + delta
        if lower is not None:
            drawn = max(lower, drawn)
        if upper is not None:
            drawn = min(upper, drawn)
        overrides[key] = round(drawn, _ROUND_DIGITS)
    return overrides


def monte_carlo_settings(
    netlist: Netlist,
    draws: int,
    seed: int,
    *,
    sigma_coupling: float = 0.02,
    sigma_radius: float = 0.02,
    sigma_loss_db_cm: float = 0.5,
    distribution: str = "gaussian",
) -> List[Dict[str, Dict[str, float]]]:
    """Draw ``draws`` seeded settings-override samples for ``netlist``.

    Each sample perturbs every perturbable setting of every instance
    (see :func:`perturb_settings`); the result plugs straight into
    :meth:`CircuitSolver.evaluate_batch` /
    :meth:`ExecutionEngine.evaluate_batch`.  Draw ``k`` is seeded by the
    sequence ``(seed, k)``, so individual draws are reproducible no matter
    how many are requested.
    """
    if draws < 0:
        raise ValueError(f"draws must be non-negative, got {draws}")
    _check_distribution(distribution)
    batches: List[Dict[str, Dict[str, float]]] = []
    for draw in range(int(draws)):
        rng = np.random.default_rng([int(seed), draw])
        overrides: Dict[str, Dict[str, float]] = {}
        for name, inst in netlist.instances.items():
            perturbed = perturb_settings(
                inst.settings,
                rng,
                sigma_coupling=sigma_coupling,
                sigma_radius=sigma_radius,
                sigma_loss_db_cm=sigma_loss_db_cm,
                distribution=distribution,
            )
            if perturbed:
                overrides[name] = perturbed
        batches.append(overrides)
    return batches


# ----------------------------------------------------------------------
# Yield scoring
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class YieldSpec:
    """A pass/fail criterion on one port pair's power transmission.

    ``metric`` selects how the ``|S|^2`` spectrum is collapsed to one
    number per draw: its band ``"mean"``, worst-case ``"min"`` or peak
    ``"max"``.  A draw passes when that number is at least
    ``min_transmission``.
    """

    output_port: str
    input_port: str
    min_transmission: float
    metric: str = "mean"

    def score(self, transmission: np.ndarray) -> float:
        """Collapse one draw's ``|S|^2`` spectrum to its scored metric."""
        if self.metric == "mean":
            return float(np.mean(transmission))
        if self.metric == "min":
            return float(np.min(transmission))
        if self.metric == "max":
            return float(np.max(transmission))
        raise ValueError(f"unknown yield metric {self.metric!r}")


@dataclass(frozen=True)
class YieldResult:
    """Outcome of one Monte-Carlo yield analysis."""

    draws: int
    passes: int
    metrics: Tuple[float, ...]

    @property
    def yield_fraction(self) -> float:
        """Fraction of draws meeting the spec (1.0 for an empty analysis)."""
        return self.passes / self.draws if self.draws else 1.0


def monte_carlo_yield(
    netlist: Netlist,
    spec: YieldSpec,
    *,
    draws: int = 64,
    seed: int = 0,
    wavelengths: Optional[np.ndarray] = None,
    engine=None,
    solver=None,
    sigma_coupling: float = 0.02,
    sigma_radius: float = 0.02,
    sigma_loss_db_cm: float = 0.5,
    distribution: str = "gaussian",
) -> YieldResult:
    """Score the fabrication yield of ``netlist`` against ``spec``.

    All draws run through the batched settings-axis executor: one compiled
    plan, a handful of fused executor passes (via ``engine.evaluate_batch``
    when an :class:`~repro.engine.ExecutionEngine` is given -- draws then
    also hit the content-addressed simulation cache -- or directly through
    ``solver.evaluate_batch`` otherwise; a private solver is created when
    neither is provided).
    """
    batches = monte_carlo_settings(
        netlist,
        draws,
        seed,
        sigma_coupling=sigma_coupling,
        sigma_radius=sigma_radius,
        sigma_loss_db_cm=sigma_loss_db_cm,
        distribution=distribution,
    )
    if engine is not None:
        smatrices = engine.evaluate_batch(netlist, batches, wavelengths)
    else:
        if solver is None:
            from ...sim.circuit import CircuitSolver

            solver = CircuitSolver()
        smatrices = solver.evaluate_batch(netlist, batches, wavelengths)
    metrics = tuple(
        spec.score(smatrix.transmission(spec.output_port, spec.input_port))
        for smatrix in smatrices
    )
    passes = sum(1 for metric in metrics if metric >= spec.min_transmission)
    return YieldResult(draws=len(metrics), passes=passes, metrics=metrics)


# ----------------------------------------------------------------------
# Nominal circuit families
# ----------------------------------------------------------------------
def interferometer_nominal() -> Netlist:
    """Nominal unbalanced MZI: two 50/50 couplers, two lossy arm waveguides."""
    return Netlist(
        instances={
            "cpIn": Instance("coupler", {"coupling": 0.5}),
            "armTop": Instance("waveguide", {"length": 100.0, "loss_db_cm": 2.0}),
            "armBot": Instance("waveguide", {"length": 110.0, "loss_db_cm": 2.0}),
            "cpOut": Instance("coupler", {"coupling": 0.5}),
        },
        connections={
            "cpIn,O1": "armTop,I1",
            "armTop,O1": "cpOut,I1",
            "cpIn,O2": "armBot,I1",
            "armBot,O1": "cpOut,I2",
        },
        ports={"I1": "cpIn,I1", "I2": "cpIn,I2", "O1": "cpOut,O1", "O2": "cpOut,O2"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )


def ring_filter_nominal() -> Netlist:
    """Nominal add/drop ring filter: two couplers closed by two half-rings.

    Unlike the monolithic ``mrr_adddrop`` model, the explicit loop makes
    this a genuine signal-flow feedback cluster, so corner batches exercise
    the batched local cluster solves.
    """
    return Netlist(
        instances={
            "cpBus": Instance("coupler", {"coupling": 0.1}),
            "cpDrop": Instance("coupler", {"coupling": 0.1}),
            "halfTop": Instance("waveguide", {"length": 15.7, "loss_db_cm": 3.0}),
            "halfBot": Instance("waveguide", {"length": 15.7, "loss_db_cm": 3.0}),
        },
        connections={
            "cpBus,O2": "halfTop,I1",
            "halfTop,O1": "cpDrop,I2",
            "cpDrop,O2": "halfBot,I1",
            "halfBot,O1": "cpBus,I2",
        },
        ports={
            "I1": "cpBus,I1",
            "O1": "cpBus,O1",
            "I2": "cpDrop,I1",
            "O2": "cpDrop,O1",
        },
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )


def wdm_link_nominal() -> Netlist:
    """Nominal 2-channel WDM ring-filter link (from the ``wdm-links`` family)."""
    return wdm_link_golden(channel_radii(2), bus_length=500.0)


# ----------------------------------------------------------------------
# Corner-problem generation
# ----------------------------------------------------------------------
def _corner_overrides(
    nominal: Netlist, family_index: int, corner: int, params: Mapping[str, object]
) -> Dict[str, Dict[str, float]]:
    """The seeded settings overrides of one family's corner ``corner``."""
    rng = np.random.default_rng([int(params["seed"]), family_index, corner])
    overrides: Dict[str, Dict[str, float]] = {}
    for name, inst in nominal.instances.items():
        perturbed = perturb_settings(
            inst.settings,
            rng,
            sigma_coupling=float(params["sigma_coupling"]),
            sigma_radius=float(params["sigma_radius"]),
            sigma_loss_db_cm=float(params["sigma_loss_db_cm"]),
            distribution=str(params["distribution"]),
        )
        if perturbed:
            overrides[name] = perturbed
    return overrides


def _mzi_description(netlist: Netlist, corner: int) -> str:
    """Natural-language task statement of one interferometer corner."""
    cp_in = netlist.instances["cpIn"].settings["coupling"]
    cp_out = netlist.instances["cpOut"].settings["coupling"]
    top = netlist.instances["armTop"].settings
    bot = netlist.instances["armBot"].settings
    return (
        f"Create fabrication corner {corner} of an unbalanced two-arm "
        "Mach-Zehnder interferometer with two inputs and two outputs, using "
        "this corner's measured parameters exactly. The input directional "
        f"coupler (built-in coupler) has a power coupling ratio of {cp_in}; "
        f"the output coupler has a ratio of {cp_out}. The top arm is a "
        f"built-in waveguide of {top['length']:.0f} microns length with a "
        f"propagation loss of {top['loss_db_cm']} dB/cm; the bottom arm is a "
        f"waveguide of {bot['length']:.0f} microns length with a loss of "
        f"{bot['loss_db_cm']} dB/cm. The input coupler's outputs feed the "
        "two arms, which feed the output coupler's inputs. Use default "
        "values for every unspecified parameter.\n"
        "Ports: 2 inputs (I1, I2), 2 outputs (O1, O2)."
    )


def _ring_description(netlist: Netlist, corner: int) -> str:
    """Natural-language task statement of one ring-filter corner."""
    bus = netlist.instances["cpBus"].settings["coupling"]
    drop = netlist.instances["cpDrop"].settings["coupling"]
    top = netlist.instances["halfTop"].settings
    bot = netlist.instances["halfBot"].settings
    return (
        f"Create fabrication corner {corner} of an add/drop ring resonator "
        "filter assembled from two built-in directional couplers closed "
        "into a ring by two half-ring waveguides, using this corner's "
        "measured parameters exactly. The bus-side coupler has a power "
        f"coupling ratio of {bus} and the drop-side coupler a ratio of "
        f"{drop}. Each half-ring is a built-in waveguide of "
        f"{top['length']} microns length; the top half has a propagation "
        f"loss of {top['loss_db_cm']} dB/cm and the bottom half a loss of "
        f"{bot['loss_db_cm']} dB/cm. The bus coupler's cross port feeds the "
        "top half-ring into the drop coupler's cross port, whose other "
        "cross port feeds the bottom half-ring back into the bus coupler. "
        "Use default values for every unspecified parameter.\n"
        "Ports: 2 inputs (I1 bus in, I2 add), 2 outputs (O1 through, O2 drop)."
    )


def _wdm_description(radii: Sequence[float], bus_length: float, corner: int) -> str:
    """Natural-language task statement of one WDM-link corner."""
    radii_text = ", ".join(str(radius) for radius in radii)
    return (
        f"Create fabrication corner {corner} of a complete 2-channel WDM "
        "ring-filter link with 2 inputs and 2 outputs, using this corner's "
        "measured ring radii exactly. The transmitter side is a 2-channel "
        "multiplexer built from add/drop microring resonators (mrr_adddrop) "
        f"with radii of {radii_text} microns whose through ports are chained "
        "into a common bus; its multiplexed output feeds a built-in "
        f"waveguide of {bus_length:.0f} microns length, which feeds the "
        "receiver side: the matching demultiplexer with the same corner's "
        "ring radii in the same channel order, where the drop port of ring "
        "k provides output k. Use default values for every unspecified "
        "parameter.\n"
        "Ports: 2 inputs (I1, I2), 2 outputs (O1, O2)."
    )


def build_problems(params: Dict[str, object]) -> List[Problem]:
    """Build the pack's corner problems for one parameter mapping.

    Per corner index the pack emits one problem of each family
    (interferometer, ring filter, WDM link), so ``corners=N`` yields ``3*N``
    problems whose golden designs share three topologies -- exactly the
    shape the batched executor amortises.
    """
    corners = int(params["corners"])  # type: ignore[arg-type]
    if corners < 1:
        raise ValueError(f"the variability pack needs corners >= 1, got {corners}")
    _check_distribution(str(params["distribution"]))

    def mzi_corner(corner: int) -> Tuple[Netlist, str]:
        """Golden design and description of interferometer corner ``corner``."""
        nominal = interferometer_nominal()
        golden = apply_settings(nominal, _corner_overrides(nominal, 0, corner, params))
        return golden, _mzi_description(golden, corner)

    def ring_corner(corner: int) -> Tuple[Netlist, str]:
        """Golden design and description of ring-filter corner ``corner``."""
        nominal = ring_filter_nominal()
        golden = apply_settings(nominal, _corner_overrides(nominal, 1, corner, params))
        return golden, _ring_description(golden, corner)

    def wdm_corner(corner: int) -> Tuple[Netlist, str]:
        """Golden design and description of WDM-link corner ``corner``.

        The per-channel radii are drawn once and used on both the mux and
        the demux side, so the description ("the same corner's ring radii")
        pins the golden design exactly.
        """
        rng = np.random.default_rng([int(params["seed"]), 2, corner])
        sigma = float(params["sigma_radius"])
        bus_length = 500.0
        radii = []
        for nominal_radius in channel_radii(2):
            if str(params["distribution"]) == "gaussian":
                delta = float(rng.normal(0.0, sigma))
            else:
                delta = float(rng.uniform(-sigma, sigma))
            radii.append(round(max(0.05, nominal_radius + delta), _ROUND_DIGITS))
        golden = wdm_link_golden(tuple(radii), bus_length=bus_length)
        return golden, _wdm_description(radii, bus_length, corner)

    families = (
        ("mzi", "MZI corner", CATEGORY_INTERFEROMETER, mzi_corner),
        ("ring", "Ring filter corner", CATEGORY_RING, ring_corner),
        ("wdm", "WDM link corner", CATEGORY_WDM, wdm_corner),
    )
    problems: List[Problem] = []
    for corner in range(corners):
        for key, title, category, build_corner in families:
            golden, description = build_corner(corner)
            problems.append(
                Problem(
                    name=f"var_{key}_c{corner:02d}",
                    title=f"{title} {corner}",
                    category=category,
                    summary=f"Fabrication corner {corner} of the {key} family",
                    description=description,
                    golden_factory=lambda golden=golden: golden.copy(),
                    port_spec=PortSpec(num_inputs=2, num_outputs=2),
                )
            )
    return problems


def make_pack():
    """Build (but do not register) the ``variability`` :class:`ProblemPack`."""
    from ..packs import ProblemPack

    return ProblemPack(
        name="variability",
        title="Fabrication variability",
        description=(
            "Monte-Carlo fabrication-corner problems: seeded Gaussian or "
            "uniform draws perturb coupler power ratios, ring radii and "
            "waveguide propagation loss of three circuit families (an "
            "unbalanced MZI, an add/drop ring filter and a 2-channel WDM "
            "link), and designs are scored for yield against transmission "
            "specs. Corner batches share topology and exercise the batched "
            "settings-axis executor."
        ),
        categories=(CATEGORY_INTERFEROMETER, CATEGORY_RING, CATEGORY_WDM),
        builder=build_problems,
        default_params=DEFAULT_PARAMS,
    )
