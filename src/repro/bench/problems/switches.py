"""Optical-switch benchmark problems (Table I).

Nine problems: the fundamental 2x2 MZI switch plus the crossbar, Spanke,
Benes and Spanke-Benes fabrics at 4x4 and 8x8.
"""

from __future__ import annotations

from typing import Callable, List

from ...netlist.schema import Netlist
from ...netlist.validation import PortSpec
from ...switching import build_fabric, os2x2_netlist
from ..problem import Category, Problem

__all__ = ["build_problems"]

_OS2X2_DESCRIPTION = """\
Create a fundamental 2 x 2 optical switch based on a Mach-Zehnder
interferometer. Use a built-in mmi2x2 to split the two inputs, place a phase
shifter in the top arm and a plain waveguide in the bottom arm (both arms 10
microns long), and recombine the arms with a second mmi2x2. Driving the phase
shifter toggles the switch between its cross and bar states; leave it at its
default value.
Ports: 2 inputs (I1, I2), 2 outputs (O1, O2)."""

_FABRIC_DETAILS = {
    "crossbar": (
        "Crossbar",
        "an {n} x {n} grid of built-in 2x2 switch elements (switch2x2): element "
        "(i, j) receives row i on port I1 and column j on port I2, forwards the "
        "row to the next element of the row via O1 and the column to the next "
        "element of the column via O2. Input i enters the first element of row "
        "i and output j leaves the last element of column j",
    ),
    "spanke": (
        "Spanke",
        "{n} binary trees of built-in 1x2 gate switches (switch1x2) on the input "
        "side and {n} binary trees of built-in 2x1 gate switches (switch2x1) on "
        "the output side, fully interconnected so that leaf j of input tree i is "
        "wired to leaf i of output tree j",
    ),
    "benes": (
        "Benes",
        "a recursive Benes network of built-in 2x2 switch elements (switch2x2): "
        "an input column of {half} switches, two {half} x {half} Benes "
        "sub-networks, and an output column of {half} switches, wired in the "
        "standard shuffle pattern",
    ),
    "spankebenes": (
        "Spanke-Benes",
        "a planar arrangement of built-in 2x2 switch elements (switch2x2) in {n} "
        "columns: even columns host switches on mode pairs (1,2), (3,4), ... and "
        "odd columns on pairs (2,3), (4,5), ..., with nearest-neighbour "
        "connections only",
    ),
}


def _fabric_description(architecture: str, n: int) -> str:
    """Natural-language task statement of one N x N switch-fabric problem."""
    title, body = _FABRIC_DETAILS[architecture]
    body = body.format(n=n, half=n // 2)
    return f"""\
Create a {n} x {n} optical switching network based on the {title} architecture.
The network consists of {body}. Leave every switch element at its default
state; the network is configured later. Do not insert any additional
components.
Ports: {n} inputs (I1..I{n}) and {n} outputs (O1..O{n})."""


def _fabric_factory(architecture: str, n: int) -> Callable[[], Netlist]:
    """Bind one (architecture, size) pair into a zero-argument golden factory."""

    def factory() -> Netlist:
        """Build the golden switch-fabric netlist."""
        return build_fabric(architecture, n).to_netlist()

    return factory


def build_problems() -> List[Problem]:
    """The nine optical-switch problems of Table I."""
    problems: List[Problem] = [
        Problem(
            name="os_2x2",
            title="OS 2 x 2",
            category=Category.OPTICAL_SWITCH,
            summary="A fundamental 2 x 2 optical switch",
            description=_OS2X2_DESCRIPTION,
            golden_factory=os2x2_netlist,
            port_spec=PortSpec(num_inputs=2, num_outputs=2),
        )
    ]
    titles = {
        "crossbar": "Crossbar",
        "spanke": "Spanke",
        "benes": "Benes",
        "spankebenes": "Spanke-Benes",
    }
    for architecture in ("crossbar", "spanke", "benes", "spankebenes"):
        for n in (4, 8):
            problems.append(
                Problem(
                    name=f"{architecture}_{n}x{n}",
                    title=f"{titles[architecture]} {n} x {n}",
                    category=Category.OPTICAL_SWITCH,
                    summary=(
                        f"A {n} x {n} optical switching network based on "
                        f"{titles[architecture]} architecture"
                    ),
                    description=_fabric_description(architecture, n),
                    golden_factory=_fabric_factory(architecture, n),
                    port_spec=PortSpec(num_inputs=n, num_outputs=n),
                )
            )
    return problems
