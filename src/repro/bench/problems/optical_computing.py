"""Optical-computing benchmark problems (Table I).

Six problems: the Clements and Reck MZI meshes at 4x4 and 8x8, the non-linear
sign (NLS) gate used in linear-optical quantum computing, and the fundamental
2x2 unitary block.
"""

from __future__ import annotations

import math
from typing import List

from ...meshes import clements_mesh_netlist, reck_mesh_netlist
from ...netlist.schema import Instance, Netlist
from ...netlist.validation import PortSpec
from ..problem import Category, Problem

__all__ = [
    "nls_golden",
    "umatrix_block_golden",
    "NLS_ETA_OUTER",
    "NLS_ETA_CENTER",
    "build_problems",
]

#: Reflectivity of the outer beam splitters of the KLM non-linear sign gate.
NLS_ETA_OUTER = 1.0 / (4.0 - 2.0 * math.sqrt(2.0))

#: Reflectivity of the central beam splitter of the KLM non-linear sign gate.
NLS_ETA_CENTER = 3.0 - 2.0 * math.sqrt(2.0)


def nls_golden() -> Netlist:
    """Golden design of the non-linear sign (NLS) gate.

    Three directional couplers implement the Knill-Laflamme-Milburn NLS gate
    on a signal channel (mode 1) and two ancilla channels (modes 2 and 3): the
    outer couplers act on the ancilla pair, the central coupler mixes the
    signal with the first ancilla.
    """
    instances = {
        "bsFirst": Instance("coupler", {"coupling": NLS_ETA_OUTER}),
        "bsCenter": Instance("coupler", {"coupling": NLS_ETA_CENTER}),
        "bsLast": Instance("coupler", {"coupling": NLS_ETA_OUTER}),
    }
    connections = {
        # The first coupler mixes the two ancilla modes.
        "bsFirst,O1": "bsCenter,I2",
        # The central coupler mixes the signal with ancilla 1.
        "bsCenter,O2": "bsLast,I1",
        # Ancilla 2 bypasses the central coupler and meets ancilla 1 again.
        "bsFirst,O2": "bsLast,I2",
    }
    ports = {
        "I1": "bsCenter,I1",  # signal
        "I2": "bsFirst,I1",  # ancilla 1
        "I3": "bsFirst,I2",  # ancilla 2
        "O1": "bsCenter,O1",
        "O2": "bsLast,O1",
        "O3": "bsLast,O2",
    }
    models = {"coupler": "coupler"}
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def umatrix_block_golden() -> Netlist:
    """Golden design of the 2x2 unitary-matrix block.

    A 2x2 MZI cell (internal phase theta, external phase phi) followed by a
    phase shifter on each output realises an arbitrary 2x2 unitary once its
    four phases are programmed.  The golden structural design leaves every
    phase at its default value.
    """
    instances = {
        "core": Instance("mzi2x2"),
        "psOutTop": Instance("phase_shifter"),
        "psOutBottom": Instance("phase_shifter"),
    }
    connections = {
        "core,O1": "psOutTop,I1",
        "core,O2": "psOutBottom,I1",
    }
    ports = {
        "I1": "core,I1",
        "I2": "core,I2",
        "O1": "psOutTop,O1",
        "O2": "psOutBottom,O1",
    }
    models = {"mzi2x2": "mzi2x2", "phase_shifter": "phase_shifter"}
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def _mesh_description(scheme: str, size: int) -> str:
    """Natural-language task statement of one programmable-mesh problem."""
    columns = "rectangular" if scheme == "Clements" else "triangular"
    count = size * (size - 1) // 2
    return f"""\
Create a {size} x {size} programmable MZI mesh arranged using the {scheme} method.
The mesh consists of {count} built-in 2x2 MZI cells (mzi2x2) arranged in the
{columns} {scheme} topology: every cell couples two adjacent optical modes, and
the cells are chained so that each mode passes through the cells of successive
columns in order. Leave every MZI at its default settings (the mesh is
programmed later). Do not insert any additional components.
Ports: {size} inputs (I1..I{size}) and {size} outputs (O1..O{size}),
numbered from the top mode to the bottom mode."""


_NLS_DESCRIPTION = f"""\
Create a Non-Linear Sign (NLS) gate with a signal channel and two additional
ancilla channels (three optical modes in total). Use three built-in directional
couplers: the first coupler mixes the two ancilla modes (coupling ratio eta1),
the central coupler mixes the signal mode with the first ancilla mode (coupling
ratio eta2), and the last coupler mixes the two ancilla modes again (coupling
ratio eta3).
Parameters:
eta1 = eta3 = {NLS_ETA_OUTER:.6f};
eta2 = {NLS_ETA_CENTER:.6f}
Ports: 3 inputs (I1 = signal, I2 and I3 = ancillas) and 3 outputs (O1..O3)."""

_UMATRIX_DESCRIPTION = """\
Create a fundamental block that can represent an arbitrary 2 x 2 unitary
matrix. Use one built-in 2x2 MZI cell (mzi2x2), whose internal phase theta and
external phase phi provide two degrees of freedom, followed by one built-in
phase shifter on each of the two outputs to provide the remaining output
phases. Leave every phase at its default value; the block is programmed later.
Ports: 2 inputs (I1, I2) and 2 outputs (O1, O2)."""


def build_problems() -> List[Problem]:
    """The six optical-computing problems of Table I."""
    problems: List[Problem] = []
    for scheme, size in (("Clements", 4), ("Clements", 8), ("Reck", 4), ("Reck", 8)):
        factory = (
            (lambda s=size: clements_mesh_netlist(s))
            if scheme == "Clements"
            else (lambda s=size: reck_mesh_netlist(s))
        )
        problems.append(
            Problem(
                name=f"{scheme.lower()}_{size}x{size}",
                title=f"{scheme} {size} x {size}",
                category=Category.OPTICAL_COMPUTING,
                summary=f"A {size} x {size} MZI mesh arranged using the {scheme} method",
                description=_mesh_description(scheme, size),
                golden_factory=factory,
                port_spec=PortSpec(num_inputs=size, num_outputs=size),
            )
        )
    problems.append(
        Problem(
            name="nls",
            title="NLS",
            category=Category.OPTICAL_COMPUTING,
            summary="A Non-Linear Sign gate with a signal channel and two additional ancilla channels",
            description=_NLS_DESCRIPTION,
            golden_factory=nls_golden,
            port_spec=PortSpec(num_inputs=3, num_outputs=3),
        )
    )
    problems.append(
        Problem(
            name="umatrix_block",
            title="U-matrix block",
            category=Category.OPTICAL_COMPUTING,
            summary="A fundamental block representing a 2 x 2 unitary matrix of arbitrary values",
            description=_UMATRIX_DESCRIPTION,
            golden_factory=umatrix_block_golden,
            port_spec=PortSpec(num_inputs=2, num_outputs=2),
        )
    )
    return problems
