"""Optical-interconnect benchmark problems (Table I).

Seven problems: a direct modulator, QPSK / 8-QAM / 64-QAM modulators, WDM
multiplexer and demultiplexer, and a 90-degree optical hybrid.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ...netlist.schema import Instance, Netlist
from ...netlist.validation import PortSpec
from ..problem import Category, Problem

__all__ = [
    "direct_modulator_golden",
    "qpsk_modulator_golden",
    "qam8_modulator_golden",
    "qam64_modulator_golden",
    "wdm_mux_golden",
    "wdm_demux_golden",
    "optical_hybrid_golden",
    "WDM_CHANNEL_RADII",
    "build_problems",
]

#: Ring radii (microns) of the four WDM channels; each radius shifts the ring
#: resonance so the channels land on different wavelengths inside the band.
WDM_CHANNEL_RADII: Tuple[float, ...] = (5.00, 5.05, 5.10, 5.15)


def direct_modulator_golden() -> Netlist:
    """Golden design of the direct modulator: waveguide -> EAM -> waveguide."""
    instances = {
        "wgIn": Instance("waveguide"),
        "modulator": Instance("eam"),
        "wgOut": Instance("waveguide"),
    }
    connections = {
        "wgIn,O1": "modulator,I1",
        "modulator,O1": "wgOut,I1",
    }
    ports = {"I1": "wgIn,I1", "O1": "wgOut,O1"}
    models = {"waveguide": "waveguide", "eam": "eam"}
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def _iq_modulator_instances(prefix: str) -> Tuple[Dict[str, Instance], Dict[str, str], str, str]:
    """Build the instances/connections of one IQ (QPSK) modulator stage.

    Returns ``(instances, connections, input_endpoint, output_endpoint)``.  The
    stage consists of a splitter, an in-phase MZM, a quadrature MZM preceded by
    a 90-degree phase shifter, and a combiner.
    """
    instances = {
        f"{prefix}split": Instance("mmi1x2"),
        f"{prefix}mzmI": Instance("mzm"),
        f"{prefix}ps90": Instance("phase_shifter", {"phase": math.pi / 2.0, "length": 0.0}),
        f"{prefix}mzmQ": Instance("mzm"),
        f"{prefix}comb": Instance("mmi2x1"),
    }
    connections = {
        f"{prefix}split,O1": f"{prefix}mzmI,I1",
        f"{prefix}mzmI,O1": f"{prefix}comb,I1",
        f"{prefix}split,O2": f"{prefix}ps90,I1",
        f"{prefix}ps90,O1": f"{prefix}mzmQ,I1",
        f"{prefix}mzmQ,O1": f"{prefix}comb,I2",
    }
    return instances, connections, f"{prefix}split,I1", f"{prefix}comb,O1"


def qpsk_modulator_golden() -> Netlist:
    """Golden design of the QPSK modulator: a single IQ modulator stage."""
    instances, connections, inp, out = _iq_modulator_instances("iq")
    ports = {"I1": inp, "O1": out}
    models = {
        "mmi1x2": "mmi1x2",
        "mmi2x1": "mmi2x1",
        "mzm": "mzm",
        "phase_shifter": "phase_shifter",
    }
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def qam8_modulator_golden() -> Netlist:
    """Golden design of the 8-QAM modulator.

    An IQ (QPSK) branch and a BPSK branch (a single MZM attenuated by 3 dB)
    are combined to produce the eight constellation points.
    """
    instances: Dict[str, Instance] = {
        "mainSplit": Instance("mmi1x2"),
        "mainComb": Instance("mmi2x1"),
        "bpskMzm": Instance("mzm"),
        "bpskAtt": Instance("attenuator", {"attenuation_db": 3.0}),
    }
    connections: Dict[str, str] = {}
    iq_instances, iq_connections, iq_in, iq_out = _iq_modulator_instances("iq")
    instances.update(iq_instances)
    connections.update(iq_connections)
    connections.update(
        {
            "mainSplit,O1": iq_in,
            iq_out: "mainComb,I1",
            "mainSplit,O2": "bpskMzm,I1",
            "bpskMzm,O1": "bpskAtt,I1",
            "bpskAtt,O1": "mainComb,I2",
        }
    )
    ports = {"I1": "mainSplit,I1", "O1": "mainComb,O1"}
    models = {
        "mmi1x2": "mmi1x2",
        "mmi2x1": "mmi2x1",
        "mzm": "mzm",
        "phase_shifter": "phase_shifter",
        "attenuator": "attenuator",
    }
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def qam64_modulator_golden() -> Netlist:
    """Golden design of the 64-QAM modulator.

    Three binary-weighted IQ stages are combined: the second and third stages
    are attenuated by 6 dB and 12 dB relative to the first, so the combined
    field spans the 64 constellation points.
    """
    instances: Dict[str, Instance] = {
        "splitA": Instance("mmi1x2"),
        "splitB": Instance("mmi1x2"),
        "combB": Instance("mmi2x1"),
        "combA": Instance("mmi2x1"),
        "attStage2": Instance("attenuator", {"attenuation_db": 6.0}),
        "attStage3": Instance("attenuator", {"attenuation_db": 12.0}),
    }
    connections: Dict[str, str] = {}
    endpoints = {}
    for stage in ("stageone", "stagetwo", "stagethree"):
        stage_instances, stage_connections, stage_in, stage_out = _iq_modulator_instances(stage)
        instances.update(stage_instances)
        connections.update(stage_connections)
        endpoints[stage] = (stage_in, stage_out)
    connections.update(
        {
            "splitA,O1": endpoints["stageone"][0],
            "splitA,O2": "splitB,I1",
            "splitB,O1": endpoints["stagetwo"][0],
            "splitB,O2": endpoints["stagethree"][0],
            endpoints["stagetwo"][1]: "attStage2,I1",
            "attStage2,O1": "combB,I1",
            endpoints["stagethree"][1]: "attStage3,I1",
            "attStage3,O1": "combB,I2",
            endpoints["stageone"][1]: "combA,I1",
            "combB,O1": "combA,I2",
        }
    )
    ports = {"I1": "splitA,I1", "O1": "combA,O1"}
    models = {
        "mmi1x2": "mmi1x2",
        "mmi2x1": "mmi2x1",
        "mzm": "mzm",
        "phase_shifter": "phase_shifter",
        "attenuator": "attenuator",
    }
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def wdm_mux_golden() -> Netlist:
    """Golden design of the 4-channel WDM multiplexer.

    Each channel enters the add port of its own add/drop microring; the rings
    share a common bus waveguide that carries the multiplexed signal to the
    single output.  The ring radii stagger the channel wavelengths.
    """
    instances: Dict[str, Instance] = {}
    connections: Dict[str, str] = {}
    ports: Dict[str, str] = {}
    previous_through = None
    for index, radius in enumerate(WDM_CHANNEL_RADII, start=1):
        name = f"ring{index}"
        instances[name] = Instance("mrr_adddrop", {"radius": radius})
        ports[f"I{index}"] = f"{name},I2"  # channel enters at the add port
        if previous_through is not None:
            connections[previous_through] = f"{name},I1"
        previous_through = f"{name},O1"
    ports["O1"] = previous_through  # type: ignore[assignment]
    models = {"mrr_adddrop": "mrr_adddrop"}
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def wdm_demux_golden() -> Netlist:
    """Golden design of the 4-channel WDM demultiplexer.

    The input bus passes four add/drop microrings in sequence; each ring drops
    its resonant channel onto a separate output port.
    """
    instances: Dict[str, Instance] = {}
    connections: Dict[str, str] = {}
    ports: Dict[str, str] = {}
    previous_through = None
    for index, radius in enumerate(WDM_CHANNEL_RADII, start=1):
        name = f"ring{index}"
        instances[name] = Instance("mrr_adddrop", {"radius": radius})
        if previous_through is None:
            ports["I1"] = f"{name},I1"
        else:
            connections[previous_through] = f"{name},I1"
        ports[f"O{index}"] = f"{name},O2"  # dropped channel
        previous_through = f"{name},O1"
    models = {"mrr_adddrop": "mrr_adddrop"}
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def optical_hybrid_golden() -> Netlist:
    """Golden design of the 90-degree optical hybrid (2 inputs, 4 outputs).

    The signal and local-oscillator inputs are each split in two; one local
    oscillator path is delayed by 90 degrees before the two 2x2 MMIs mix the
    pairs, producing the four quadrature outputs.
    """
    instances = {
        "splitSig": Instance("mmi1x2"),
        "splitLo": Instance("mmi1x2"),
        "psQuad": Instance("phase_shifter", {"phase": math.pi / 2.0, "length": 0.0}),
        "mmiTop": Instance("mmi2x2"),
        "mmiBottom": Instance("mmi2x2"),
    }
    connections = {
        "splitSig,O1": "mmiTop,I1",
        "splitSig,O2": "mmiBottom,I1",
        "splitLo,O1": "mmiTop,I2",
        "splitLo,O2": "psQuad,I1",
        "psQuad,O1": "mmiBottom,I2",
    }
    ports = {
        "I1": "splitSig,I1",
        "I2": "splitLo,I1",
        "O1": "mmiTop,O1",
        "O2": "mmiTop,O2",
        "O3": "mmiBottom,O1",
        "O4": "mmiBottom,O2",
    }
    models = {
        "mmi1x2": "mmi1x2",
        "mmi2x2": "mmi2x2",
        "phase_shifter": "phase_shifter",
    }
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


_DIRECT_MOD_DESCRIPTION = """\
Create an optical direct modulator with one input and one output. The signal
enters an input waveguide, passes through a built-in electro-absorption
modulator (eam) that imprints the data, and exits through an output waveguide.
Use default values for every parameter.
Ports: 1 input (I1), 1 output (O1)."""

_QPSK_DESCRIPTION = """\
Create an optical QPSK modulator (IQ modulator) with one input and one output.
The input is split by a built-in mmi1x2 into an in-phase path and a quadrature
path. Each path contains a built-in Mach-Zehnder modulator (mzm); the
quadrature path is additionally preceded by a phase shifter with a phase of
pi/2 radians and zero length. The two paths are recombined by a built-in
mmi2x1. Use default values for every unspecified parameter.
Ports: 1 input (I1), 1 output (O1)."""

_QAM8_DESCRIPTION = """\
Create an optical 8-QAM modulator with one input and one output. The input is
split by a built-in mmi1x2 into two branches. The first branch is a complete
IQ (QPSK) modulator: an mmi1x2 splitter, an in-phase mzm, a quadrature path
with a phase shifter of pi/2 radians (zero length) followed by an mzm, and an
mmi2x1 combiner. The second branch is a BPSK path: a single mzm followed by an
attenuator with 3 dB attenuation. The two branches are recombined by a
built-in mmi2x1. Use default values for every unspecified parameter.
Ports: 1 input (I1), 1 output (O1)."""

_QAM64_DESCRIPTION = """\
Create an optical 64-QAM modulator with one input and one output, built from
three binary-weighted IQ (QPSK) modulator stages. Each IQ stage consists of an
mmi1x2 splitter, an in-phase mzm, a quadrature path with a pi/2 phase shifter
(zero length) followed by an mzm, and an mmi2x1 combiner. The input is split by
an mmi1x2 into stage one and a second mmi1x2 that feeds stages two and three.
Stage two is followed by a 6 dB attenuator and stage three by a 12 dB
attenuator; their outputs are combined by an mmi2x1, and that result is
combined with stage one by a final mmi2x1. Use default values for every
unspecified parameter.
Ports: 1 input (I1), 1 output (O1)."""

_WDM_MUX_DESCRIPTION = """\
Create a 4-channel WDM multiplexer with four inputs and one output. Use four
built-in add/drop microring resonators (mrr_adddrop) with radii of 5.00, 5.05,
5.10 and 5.15 microns. Channel k enters the add port (I2) of ring k; the
through ports of the rings are chained to form a common bus waveguide, and the
through port of the last ring is the multiplexed output. Use default values
for every unspecified parameter.
Ports: 4 inputs (I1..I4), 1 output (O1)."""

_WDM_DEMUX_DESCRIPTION = """\
Create a 4-channel WDM demultiplexer with one input and four outputs. Use four
built-in add/drop microring resonators (mrr_adddrop) with radii of 5.00, 5.05,
5.10 and 5.15 microns. The input enters the bus port (I1) of the first ring;
the through port of each ring feeds the bus port of the next ring, and the
drop port (O2) of ring k provides output k. Use default values for every
unspecified parameter.
Ports: 1 input (I1), 4 outputs (O1..O4)."""

_HYBRID_DESCRIPTION = """\
Create a 90-degree optical hybrid with two inputs (signal and local oscillator)
and four outputs. Split each input with a built-in mmi1x2. Mix the first output
of the signal splitter with the first output of the local-oscillator splitter
in a built-in mmi2x2; mix the second output of the signal splitter with the
second output of the local-oscillator splitter, delayed by a phase shifter of
pi/2 radians and zero length, in a second mmi2x2. The four MMI outputs are the
four hybrid outputs. Use default values for every unspecified parameter.
Ports: 2 inputs (I1 = signal, I2 = local oscillator), 4 outputs (O1..O4)."""


def build_problems() -> List[Problem]:
    """The seven optical-interconnect problems of Table I."""
    return [
        Problem(
            name="direct_modulator",
            title="Direct modulator",
            category=Category.OPTICAL_INTERCONNECTS,
            summary="An optical direct modulator",
            description=_DIRECT_MOD_DESCRIPTION,
            golden_factory=direct_modulator_golden,
            port_spec=PortSpec(num_inputs=1, num_outputs=1),
        ),
        Problem(
            name="qpsk_modulator",
            title="QPSK modulator",
            category=Category.OPTICAL_INTERCONNECTS,
            summary="An optical QPSK modulator",
            description=_QPSK_DESCRIPTION,
            golden_factory=qpsk_modulator_golden,
            port_spec=PortSpec(num_inputs=1, num_outputs=1),
        ),
        Problem(
            name="qam8_modulator",
            title="8-QAM modulator",
            category=Category.OPTICAL_INTERCONNECTS,
            summary="An optical 8-QAM modulator",
            description=_QAM8_DESCRIPTION,
            golden_factory=qam8_modulator_golden,
            port_spec=PortSpec(num_inputs=1, num_outputs=1),
        ),
        Problem(
            name="qam64_modulator",
            title="64-QAM modulator",
            category=Category.OPTICAL_INTERCONNECTS,
            summary="An optical 64-QAM modulator",
            description=_QAM64_DESCRIPTION,
            golden_factory=qam64_modulator_golden,
            port_spec=PortSpec(num_inputs=1, num_outputs=1),
        ),
        Problem(
            name="wdm_mux",
            title="WDM mux",
            category=Category.OPTICAL_INTERCONNECTS,
            summary="A WDM multiplexer",
            description=_WDM_MUX_DESCRIPTION,
            golden_factory=wdm_mux_golden,
            port_spec=PortSpec(num_inputs=4, num_outputs=1),
        ),
        Problem(
            name="wdm_demux",
            title="WDM demux",
            category=Category.OPTICAL_INTERCONNECTS,
            summary="A WDM demultiplexer",
            description=_WDM_DEMUX_DESCRIPTION,
            golden_factory=wdm_demux_golden,
            port_spec=PortSpec(num_inputs=1, num_outputs=4),
        ),
        Problem(
            name="optical_hybrid",
            title="Optical hybrid",
            category=Category.OPTICAL_INTERCONNECTS,
            summary="A 90 degree optical hybrid",
            description=_HYBRID_DESCRIPTION,
            golden_factory=optical_hybrid_golden,
            port_spec=PortSpec(num_inputs=2, num_outputs=4),
        ),
    ]
