"""Golden designs and descriptions of the benchmark problems, by pack.

The four category modules (``fundamental``, ``interconnects``,
``optical_computing``, ``switches``) hold the paper's 24 core problems;
``wdm_links`` holds the parametric N-channel WDM interconnect pack.
"""

from . import fundamental, interconnects, optical_computing, switches, wdm_links

__all__ = ["fundamental", "interconnects", "optical_computing", "switches", "wdm_links"]
