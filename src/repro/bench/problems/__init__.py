"""Golden designs and descriptions of the 24 PICBench problems, by category."""

from . import fundamental, interconnects, optical_computing, switches

__all__ = ["fundamental", "interconnects", "optical_computing", "switches"]
