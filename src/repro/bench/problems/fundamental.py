"""Fundamental-device benchmark problems: ``MZM`` and ``MZI ps`` (Table I).

These are not bare device models: both involve connections among several
components and serve as building blocks for the larger circuits.
"""

from __future__ import annotations

from typing import List

from ...netlist.schema import Instance, Netlist
from ...netlist.validation import PortSpec
from ..problem import Category, Problem

__all__ = ["mzi_ps_golden", "mzm_golden", "build_problems"]


def mzi_ps_golden(delta_length: float = 10.0, shifter_length: float = 10.0) -> Netlist:
    """Golden design of the ``MZI ps`` problem (Fig. 2 / Fig. 4 of the paper).

    The top arm is a phase shifter of length ``shifter_length``; the bottom arm
    is a waveguide whose length exceeds the shifter by ``delta_length``.
    """
    instances = {
        "mmi1": Instance("mmi1x2"),
        "phaseShifter": Instance("phase_shifter", {"length": shifter_length}),
        "waveBottom": Instance("waveguide", {"length": shifter_length + delta_length}),
        "mmi2": Instance("mmi2x1"),
    }
    connections = {
        "mmi1,O1": "phaseShifter,I1",
        "phaseShifter,O1": "mmi2,I1",
        "mmi1,O2": "waveBottom,I1",
        "waveBottom,O1": "mmi2,I2",
    }
    ports = {"I1": "mmi1,I1", "O1": "mmi2,O1"}
    models = {
        "mmi1x2": "mmi1x2",
        "mmi2x1": "mmi2x1",
        "phase_shifter": "phase_shifter",
        "waveguide": "waveguide",
    }
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


def mzm_golden(arm_length: float = 100.0) -> Netlist:
    """Golden design of the ``MZM`` problem: a push-pull Mach-Zehnder modulator.

    Both arms carry a phase shifter of length ``arm_length`` so the modulator
    can be driven differentially; the splitter and combiner are MMIs.
    """
    instances = {
        "mmiIn": Instance("mmi1x2"),
        "psTop": Instance("phase_shifter", {"length": arm_length}),
        "psBottom": Instance("phase_shifter", {"length": arm_length}),
        "mmiOut": Instance("mmi2x1"),
    }
    connections = {
        "mmiIn,O1": "psTop,I1",
        "psTop,O1": "mmiOut,I1",
        "mmiIn,O2": "psBottom,I1",
        "psBottom,O1": "mmiOut,I2",
    }
    ports = {"I1": "mmiIn,I1", "O1": "mmiOut,O1"}
    models = {
        "mmi1x2": "mmi1x2",
        "mmi2x1": "mmi2x1",
        "phase_shifter": "phase_shifter",
    }
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


_MZI_PS_DESCRIPTION = """\
Create a Mach-Zehnder interferometer (MZI) with a single input and a single
output, featuring a path length difference of dL between the two arms. A phase
shifter with a length of L should be applied to the top arm to modulate the
phase of the optical signal; the bottom arm is a plain waveguide whose length
exceeds the phase shifter length by dL. Use the built-in multimode
interferometer components (mmi1x2 for splitting, mmi2x1 for combining) and the
built-in phase shifter to achieve the desired phase modulation.
Parameters:
dL = 10 microns;
L  = 10 microns
Ports: 1 input (I1), 1 output (O1)."""

_MZM_DESCRIPTION = """\
Create a push-pull Mach-Zehnder modulator (MZM) with a single optical input and
a single optical output. The input is split by a built-in mmi1x2, each arm
carries a phase shifter with a length of L so the two arms can be driven
differentially, and the arms are recombined by a built-in mmi2x1. Use default
values for every parameter that is not specified.
Parameters:
L = 100 microns (both phase shifters)
Ports: 1 input (I1), 1 output (O1)."""


def build_problems() -> List[Problem]:
    """The two fundamental-device problems of Table I."""
    return [
        Problem(
            name="mzi_ps",
            title="MZI ps",
            category=Category.FUNDAMENTAL_DEVICES,
            summary="A Mach-Zehnder interferometer with a phase shifter",
            description=_MZI_PS_DESCRIPTION,
            golden_factory=mzi_ps_golden,
            port_spec=PortSpec(num_inputs=1, num_outputs=1),
        ),
        Problem(
            name="mzm",
            title="MZM",
            category=Category.FUNDAMENTAL_DEVICES,
            summary="A Mach-Zehnder modulator",
            description=_MZM_DESCRIPTION,
            golden_factory=mzm_golden,
            port_spec=PortSpec(num_inputs=1, num_outputs=1),
        ),
    ]
