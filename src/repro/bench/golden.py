"""Golden frequency responses for the benchmark problems.

The paper pre-computes each golden design's frequency response and stores it
alongside the problem ("the correct design is subsequently fed into the
simulator, and its frequency response is directly saved", Section III-B).
This module provides the same behaviour with an in-process cache keyed by
problem name and wavelength grid, plus optional JSON persistence so the
responses can be shipped as artefacts.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..constants import DEFAULT_NUM_WAVELENGTHS, default_wavelength_grid
from ..engine.engine import ExecutionEngine
from ..engine.fingerprint import netlist_fingerprint
from ..sim.analysis import FrequencyResponse
from ..sim.circuit import CircuitSolver
from ..sim.registry import ModelRegistry
from .packs import CORE_PACK_NAME, PackParams
from .problem import Problem
from .suite import all_problems, get_problem

__all__ = ["GoldenStore", "golden_response"]


class GoldenStore:
    """Computes and caches golden frequency responses.

    Parameters
    ----------
    num_wavelengths:
        Number of points of the evaluation wavelength grid (1510-1590 nm).
    registry:
        Optional custom model registry (ignored when ``engine`` is given --
        the engine already carries one).
    cache_dir:
        Optional directory for JSON persistence of the responses.
    engine:
        The :class:`~repro.engine.ExecutionEngine` golden simulations route
        through.  Sharing one engine between the store and the evaluator
        deduplicates golden and candidate simulations in a single
        content-addressed cache.  Defaults to a private engine over
        ``registry``.
    pack:
        Problem pack used to resolve string problem names and by
        :meth:`precompute_all`; also namespaces the in-memory and on-disk
        cache keys, so one store (or one shared ``cache_dir``) can serve
        several packs without collisions.
    pack_params:
        Optional generation parameters of ``pack`` (parametric packs).
    """

    def __init__(
        self,
        num_wavelengths: int = DEFAULT_NUM_WAVELENGTHS,
        registry: Optional[ModelRegistry] = None,
        cache_dir: Optional[Path] = None,
        *,
        engine: Optional[ExecutionEngine] = None,
        pack: str = CORE_PACK_NAME,
        pack_params: Optional[PackParams] = None,
    ) -> None:
        """Initialise the store (see the class docstring for the parameters)."""
        self.num_wavelengths = int(num_wavelengths)
        self.wavelengths = default_wavelength_grid(self.num_wavelengths)
        self.engine = engine if engine is not None else ExecutionEngine(registry=registry)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.pack = pack
        self.pack_params = pack_params
        self._memory: Dict[str, FrequencyResponse] = {}
        self._lock = threading.Lock()

    @property
    def solver(self) -> CircuitSolver:
        """The circuit solver of the underlying engine."""
        return self.engine.solver

    # ------------------------------------------------------------------
    def _golden_key(self, problem: Problem) -> str:
        """Cache key of one golden response: pack, name and golden fingerprint.

        Including the golden netlist's content fingerprint means parametric
        rebuilds of a pack (same problem name, different golden design) can
        never hit a stale entry -- neither in memory nor on disk.
        """
        fingerprint = netlist_fingerprint(problem.golden_netlist())[:12]
        return f"{problem.pack}.{problem.name}.golden.{self.num_wavelengths}.{fingerprint}"

    def _cache_path(self, golden_key: str) -> Optional[Path]:
        """On-disk persistence path of one golden response (or ``None``)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{golden_key}.json"

    def response_for(self, problem: Problem | str) -> FrequencyResponse:
        """Return (computing and caching if needed) the golden response.

        String names are resolved against the store's pack.  Safe to call
        from parallel sweep workers: the per-problem memory is lock-protected,
        and in the worst case two threads racing on a cold entry compute the
        same (deterministic) response twice.
        """
        if isinstance(problem, str):
            problem = get_problem(problem, self.pack, self.pack_params)
        memory_key = self._golden_key(problem)
        with self._lock:
            if memory_key in self._memory:
                return self._memory[memory_key]

        path = self._cache_path(memory_key)
        if path is not None and path.exists():
            try:
                with path.open("r", encoding="utf-8") as handle:
                    response = FrequencyResponse.from_dict(json.load(handle))
            except (OSError, ValueError, KeyError):
                response = None  # corrupt / truncated entry: recompute and overwrite
            if response is not None:
                with self._lock:
                    self._memory[memory_key] = response
                return response

        smatrix = self.engine.evaluate(
            problem.golden_netlist(), self.wavelengths, port_spec=problem.port_spec
        )
        response = FrequencyResponse.from_smatrix(smatrix)
        with self._lock:
            self._memory[memory_key] = response
        if path is not None:
            # Atomic temp-file + rename so racing parallel workers (or a kill
            # mid-write) can never leave a truncated JSON behind.
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                prefix=path.stem, suffix=".tmp", dir=str(path.parent)
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                    json.dump(response.to_dict(), tmp)
                os.replace(tmp_name, path)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        return response

    def precompute_all(self) -> Dict[str, FrequencyResponse]:
        """Compute the golden responses of every problem in the store's pack."""
        return {
            problem.name: self.response_for(problem)
            for problem in all_problems(self.pack, self.pack_params)
        }


_DEFAULT_STORES: Dict[Tuple[int, str], GoldenStore] = {}
_DEFAULT_STORES_LOCK = threading.Lock()


def golden_response(
    problem: Problem | str,
    num_wavelengths: int = DEFAULT_NUM_WAVELENGTHS,
    pack: str = CORE_PACK_NAME,
) -> FrequencyResponse:
    """Module-level convenience wrapper around shared :class:`GoldenStore` instances.

    One store is kept per ``(num_wavelengths, pack)`` pair; string problem
    names resolve against ``pack`` (default-parameter build).
    """
    if isinstance(problem, Problem):
        pack = problem.pack
    with _DEFAULT_STORES_LOCK:
        store = _DEFAULT_STORES.get((num_wavelengths, pack))
        if store is None:
            store = GoldenStore(num_wavelengths=num_wavelengths, pack=pack)
            _DEFAULT_STORES[(num_wavelengths, pack)] = store
    return store.response_for(problem)
