"""Golden frequency responses for the benchmark problems.

The paper pre-computes each golden design's frequency response and stores it
alongside the problem ("the correct design is subsequently fed into the
simulator, and its frequency response is directly saved", Section III-B).
This module provides the same behaviour with an in-process cache keyed by
problem name and wavelength grid, plus optional JSON persistence so the
responses can be shipped as artefacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..constants import DEFAULT_NUM_WAVELENGTHS, default_wavelength_grid
from ..sim.analysis import FrequencyResponse
from ..sim.circuit import CircuitSolver
from ..sim.registry import ModelRegistry
from .problem import Problem
from .suite import all_problems, get_problem

__all__ = ["GoldenStore", "golden_response"]


class GoldenStore:
    """Computes and caches golden frequency responses.

    Parameters
    ----------
    num_wavelengths:
        Number of points of the evaluation wavelength grid (1510-1590 nm).
    registry:
        Optional custom model registry.
    cache_dir:
        Optional directory for JSON persistence of the responses.
    """

    def __init__(
        self,
        num_wavelengths: int = DEFAULT_NUM_WAVELENGTHS,
        registry: Optional[ModelRegistry] = None,
        cache_dir: Optional[Path] = None,
    ) -> None:
        self.num_wavelengths = int(num_wavelengths)
        self.wavelengths = default_wavelength_grid(self.num_wavelengths)
        self.solver = CircuitSolver(registry=registry)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: Dict[str, FrequencyResponse] = {}

    # ------------------------------------------------------------------
    def _cache_path(self, problem_name: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{problem_name}.golden.{self.num_wavelengths}.json"

    def response_for(self, problem: Problem | str) -> FrequencyResponse:
        """Return (computing and caching if needed) the golden response."""
        if isinstance(problem, str):
            problem = get_problem(problem)
        if problem.name in self._memory:
            return self._memory[problem.name]

        path = self._cache_path(problem.name)
        if path is not None and path.exists():
            with path.open("r", encoding="utf-8") as handle:
                response = FrequencyResponse.from_dict(json.load(handle))
            self._memory[problem.name] = response
            return response

        smatrix = self.solver.evaluate(
            problem.golden_netlist(), self.wavelengths, port_spec=problem.port_spec
        )
        response = FrequencyResponse.from_smatrix(smatrix)
        self._memory[problem.name] = response
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w", encoding="utf-8") as handle:
                json.dump(response.to_dict(), handle)
        return response

    def precompute_all(self) -> Dict[str, FrequencyResponse]:
        """Compute the golden responses of every problem in the suite."""
        return {problem.name: self.response_for(problem) for problem in all_problems()}


_DEFAULT_STORES: Dict[int, GoldenStore] = {}


def golden_response(
    problem: Problem | str, num_wavelengths: int = DEFAULT_NUM_WAVELENGTHS
) -> FrequencyResponse:
    """Module-level convenience wrapper around a shared :class:`GoldenStore`."""
    store = _DEFAULT_STORES.get(num_wavelengths)
    if store is None:
        store = GoldenStore(num_wavelengths=num_wavelengths)
        _DEFAULT_STORES[num_wavelengths] = store
    return store.response_for(problem)
