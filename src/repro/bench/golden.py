"""Golden frequency responses for the benchmark problems.

The paper pre-computes each golden design's frequency response and stores it
alongside the problem ("the correct design is subsequently fed into the
simulator, and its frequency response is directly saved", Section III-B).
This module provides the same behaviour with an in-process cache keyed by
problem name and wavelength grid, plus optional JSON persistence so the
responses can be shipped as artefacts.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..constants import DEFAULT_NUM_WAVELENGTHS, default_wavelength_grid
from ..engine.engine import ExecutionEngine
from ..sim.analysis import FrequencyResponse
from ..sim.circuit import CircuitSolver
from ..sim.registry import ModelRegistry
from .problem import Problem
from .suite import all_problems, get_problem

__all__ = ["GoldenStore", "golden_response"]


class GoldenStore:
    """Computes and caches golden frequency responses.

    Parameters
    ----------
    num_wavelengths:
        Number of points of the evaluation wavelength grid (1510-1590 nm).
    registry:
        Optional custom model registry (ignored when ``engine`` is given --
        the engine already carries one).
    cache_dir:
        Optional directory for JSON persistence of the responses.
    engine:
        The :class:`~repro.engine.ExecutionEngine` golden simulations route
        through.  Sharing one engine between the store and the evaluator
        deduplicates golden and candidate simulations in a single
        content-addressed cache.  Defaults to a private engine over
        ``registry``.
    """

    def __init__(
        self,
        num_wavelengths: int = DEFAULT_NUM_WAVELENGTHS,
        registry: Optional[ModelRegistry] = None,
        cache_dir: Optional[Path] = None,
        *,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.num_wavelengths = int(num_wavelengths)
        self.wavelengths = default_wavelength_grid(self.num_wavelengths)
        self.engine = engine if engine is not None else ExecutionEngine(registry=registry)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: Dict[str, FrequencyResponse] = {}
        self._lock = threading.Lock()

    @property
    def solver(self) -> CircuitSolver:
        """The circuit solver of the underlying engine."""
        return self.engine.solver

    # ------------------------------------------------------------------
    def _cache_path(self, problem_name: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{problem_name}.golden.{self.num_wavelengths}.json"

    def response_for(self, problem: Problem | str) -> FrequencyResponse:
        """Return (computing and caching if needed) the golden response.

        Safe to call from parallel sweep workers: the per-problem memory is
        lock-protected, and in the worst case two threads racing on a cold
        entry compute the same (deterministic) response twice.
        """
        if isinstance(problem, str):
            problem = get_problem(problem)
        with self._lock:
            if problem.name in self._memory:
                return self._memory[problem.name]

        path = self._cache_path(problem.name)
        if path is not None and path.exists():
            try:
                with path.open("r", encoding="utf-8") as handle:
                    response = FrequencyResponse.from_dict(json.load(handle))
            except (OSError, ValueError, KeyError):
                response = None  # corrupt / truncated entry: recompute and overwrite
            if response is not None:
                with self._lock:
                    self._memory[problem.name] = response
                return response

        smatrix = self.engine.evaluate(
            problem.golden_netlist(), self.wavelengths, port_spec=problem.port_spec
        )
        response = FrequencyResponse.from_smatrix(smatrix)
        with self._lock:
            self._memory[problem.name] = response
        if path is not None:
            # Atomic temp-file + rename so racing parallel workers (or a kill
            # mid-write) can never leave a truncated JSON behind.
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                prefix=path.stem, suffix=".tmp", dir=str(path.parent)
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                    json.dump(response.to_dict(), tmp)
                os.replace(tmp_name, path)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        return response

    def precompute_all(self) -> Dict[str, FrequencyResponse]:
        """Compute the golden responses of every problem in the suite."""
        return {problem.name: self.response_for(problem) for problem in all_problems()}


_DEFAULT_STORES: Dict[int, GoldenStore] = {}


def golden_response(
    problem: Problem | str, num_wavelengths: int = DEFAULT_NUM_WAVELENGTHS
) -> FrequencyResponse:
    """Module-level convenience wrapper around a shared :class:`GoldenStore`."""
    store = _DEFAULT_STORES.get(num_wavelengths)
    if store is None:
        store = GoldenStore(num_wavelengths=num_wavelengths)
        _DEFAULT_STORES[num_wavelengths] = store
    return store.response_for(problem)
