"""The :class:`Problem` dataclass describing one PICBench design task.

Each of the 24 benchmark problems bundles (Section III-B of the paper):

* a natural-language **description** of the desired circuit, including its
  configuration parameters and the number of input/output ports (Fig. 2),
* the expert-written **golden netlist**, and
* the golden **frequency response**, obtained by simulating the golden design
  (computed lazily and cached by :mod:`repro.bench.golden`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from ..netlist.schema import Netlist
from ..netlist.validation import PortSpec

__all__ = ["Category", "Problem"]


class Category:
    """Problem categories of Table I."""

    OPTICAL_COMPUTING = "Optical Computing"
    OPTICAL_INTERCONNECTS = "Optical Interconnects"
    OPTICAL_SWITCH = "Optical Switch"
    FUNDAMENTAL_DEVICES = "Fundamental Devices"

    ALL: Tuple[str, ...] = (
        OPTICAL_COMPUTING,
        OPTICAL_INTERCONNECTS,
        OPTICAL_SWITCH,
        FUNDAMENTAL_DEVICES,
    )


@dataclass(frozen=True)
class Problem:
    """One benchmark design problem.

    Attributes
    ----------
    name:
        Unique identifier (e.g. ``"mzi_ps"``, ``"benes_8x8"``).
    title:
        Display name matching Table I (e.g. ``"Benes 8 x 8"``).
    category:
        One of the four :class:`Category` values.
    summary:
        The one-line description from Table I.
    description:
        The full natural-language task statement handed to the LLM.
    golden_factory:
        Zero-argument callable building the golden netlist.
    port_spec:
        Expected number of external input / output ports.
    pack:
        Name of the problem pack the problem belongs to.  The paper's 24
        problems live in the ``"core"`` pack; parametric packs stamp their own
        name when building (see :mod:`repro.bench.packs`).
    """

    name: str
    title: str
    category: str
    summary: str
    description: str
    golden_factory: Callable[[], Netlist] = field(repr=False)
    port_spec: PortSpec
    pack: str = "core"

    def golden_netlist(self) -> Netlist:
        """Build (a fresh copy of) the expert-written golden netlist."""
        return self.golden_factory()

    @property
    def complexity(self) -> int:
        """Number of instances in the golden design (a difficulty proxy)."""
        return self.golden_netlist().num_instances()
