"""Benes rearrangeably non-blocking switching network.

An ``N x N`` Benes network (``N`` a power of two) consists of an input column
of ``N/2`` 2x2 switches, two recursively constructed ``N/2 x N/2`` Benes
sub-networks, and an output column of ``N/2`` switches, for a total of
``N/2 * (2*log2(N) - 1)`` elements.  Any permutation can be routed using the
classic looping algorithm, implemented in :func:`route_benes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .fabric import SwitchElement, SwitchFabric, validate_permutation

__all__ = ["benes_fabric", "route_benes", "benes_element_count"]


def _check_power_of_two(n: int) -> None:
    if n < 2 or n & (n - 1):
        raise ValueError(f"Benes fabric size must be a power of two >= 2, got {n}")


def benes_element_count(n: int) -> int:
    """Number of 2x2 switch elements in an ``n x n`` Benes network."""
    _check_power_of_two(n)
    if n == 2:
        return 1
    stages = 2 * (n.bit_length() - 1) - 1
    return (n // 2) * stages


@dataclass
class _BenesNode:
    """Recursive structure of a Benes network used for building and routing."""

    size: int
    input_switches: List[str] = field(default_factory=list)
    output_switches: List[str] = field(default_factory=list)
    upper: Optional["_BenesNode"] = None
    lower: Optional["_BenesNode"] = None
    single: Optional[str] = None  # the lone switch of a 2x2 base case

    # Endpoints exposed to the enclosing network, indexed by terminal number.
    input_endpoints: List[str] = field(default_factory=list)
    output_endpoints: List[str] = field(default_factory=list)


def _build(
    n: int,
    counter: List[int],
    elements: Dict[str, SwitchElement],
    connections: Dict[str, str],
    depth: int,
) -> _BenesNode:
    """Recursively build an ``n``-terminal Benes network and return its structure."""
    if n == 2:
        counter[0] += 1
        name = f"sw{counter[0]}"
        elements[name] = SwitchElement(name=name, kind="switch2x2", metadata={"depth": depth})
        return _BenesNode(
            size=2,
            single=name,
            input_endpoints=[f"{name},I1", f"{name},I2"],
            output_endpoints=[f"{name},O1", f"{name},O2"],
        )

    node = _BenesNode(size=n)
    for _ in range(n // 2):
        counter[0] += 1
        name = f"sw{counter[0]}"
        elements[name] = SwitchElement(
            name=name, kind="switch2x2", metadata={"depth": depth, "stage": 0}
        )
        node.input_switches.append(name)
        node.input_endpoints.extend([f"{name},I1", f"{name},I2"])

    node.upper = _build(n // 2, counter, elements, connections, depth + 1)
    node.lower = _build(n // 2, counter, elements, connections, depth + 1)

    for _ in range(n // 2):
        counter[0] += 1
        name = f"sw{counter[0]}"
        elements[name] = SwitchElement(
            name=name, kind="switch2x2", metadata={"depth": depth, "stage": 1}
        )
        node.output_switches.append(name)
        node.output_endpoints.extend([f"{name},O1", f"{name},O2"])

    for k in range(n // 2):
        connections[f"{node.input_switches[k]},O1"] = node.upper.input_endpoints[k]
        connections[f"{node.input_switches[k]},O2"] = node.lower.input_endpoints[k]
        connections[node.upper.output_endpoints[k]] = f"{node.output_switches[k]},I1"
        connections[node.lower.output_endpoints[k]] = f"{node.output_switches[k]},I2"
    return node


def _build_structure(n: int) -> Tuple[_BenesNode, Dict[str, SwitchElement], Dict[str, str]]:
    elements: Dict[str, SwitchElement] = {}
    connections: Dict[str, str] = {}
    root = _build(n, [0], elements, connections, depth=0)
    return root, elements, connections


def benes_fabric(n: int) -> SwitchFabric:
    """Build the ``n x n`` Benes fabric (``n`` must be a power of two)."""
    _check_power_of_two(n)
    root, elements, connections = _build_structure(n)
    ports: Dict[str, str] = {}
    for terminal in range(n):
        ports[f"I{terminal + 1}"] = root.input_endpoints[terminal]
    for terminal in range(n):
        ports[f"O{terminal + 1}"] = root.output_endpoints[terminal]
    return SwitchFabric(
        architecture="benes",
        size=n,
        elements=elements,
        connections=connections,
        ports=ports,
    )


def _route_node(node: _BenesNode, permutation: Sequence[int], states: Dict[str, str]) -> None:
    """Apply the looping algorithm to route ``permutation`` through ``node``."""
    n = node.size
    if n == 2:
        assert node.single is not None
        states[node.single] = "bar" if permutation[0] == 0 else "cross"
        return

    half = n // 2
    # side[i] is 0 when input terminal i is routed through the upper sub-network.
    side: List[Optional[int]] = [None] * n
    inverse = [0] * n
    for inp, out in enumerate(permutation):
        inverse[out] = inp

    for start in range(n):
        if side[start] is not None:
            continue
        current = start
        assignment = 0  # route the loop's starting terminal through the upper network
        while side[current] is None:
            side[current] = assignment
            out = permutation[current]
            partner_out = out ^ 1  # the other terminal of the same output switch
            partner_in = inverse[partner_out]
            side[partner_in] = 1 - assignment
            # Continue the loop with the partner of that input on its own switch.
            current = partner_in ^ 1
            assignment = 1 - side[partner_in]

    upper_perm = [0] * half
    lower_perm = [0] * half
    for inp, out in enumerate(permutation):
        in_switch, out_switch = inp // 2, out // 2
        if side[inp] == 0:
            upper_perm[in_switch] = out_switch
        else:
            lower_perm[in_switch] = out_switch

    for k in range(half):
        upper_input = 2 * k if side[2 * k] == 0 else 2 * k + 1
        states[node.input_switches[k]] = "bar" if upper_input == 2 * k else "cross"
    for k in range(half):
        out_upper = None
        for inp, out in enumerate(permutation):
            if out // 2 == k and side[inp] == 0:
                out_upper = out
                break
        assert out_upper is not None
        states[node.output_switches[k]] = "bar" if out_upper == 2 * k else "cross"

    assert node.upper is not None and node.lower is not None
    _route_node(node.upper, upper_perm, states)
    _route_node(node.lower, lower_perm, states)


def route_benes(n: int, permutation: Sequence[int]) -> Dict[str, str]:
    """Return the element states routing ``permutation`` through a Benes fabric.

    ``permutation[i]`` is the output terminal that input terminal ``i`` must
    reach.  Uses the looping algorithm, so every permutation is routable.
    """
    _check_power_of_two(n)
    perm = list(validate_permutation(permutation, n))
    root, _elements, _connections = _build_structure(n)
    states: Dict[str, str] = {}
    _route_node(root, perm, states)
    return states
