"""Spanke switching network.

The Spanke architecture uses ``N`` 1xN gate-switch trees on the input side and
``N`` Nx1 gate-switch trees on the output side, with a full interconnect in
between: leaf ``j`` of input tree ``i`` is wired to leaf ``i`` of output tree
``j``.  It is strictly non-blocking and every path crosses exactly
``2 * log2(N)`` switch elements.

Trees are binary and built from ``switch1x2`` / ``switch2x1`` elements using
heap indexing: node ``1`` is the root and node ``k`` has children ``2k`` and
``2k + 1``; nodes ``N/2 .. N-1`` are leaves whose two branches correspond to
consecutive leaf indices.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .fabric import SwitchElement, SwitchFabric, validate_permutation

__all__ = ["spanke_fabric", "route_spanke"]


def _check_power_of_two(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise ValueError(f"Spanke fabric size must be a power of two >= 2, got {n}")
    return int(n).bit_length() - 1


def _input_node_name(tree: int, node: int) -> str:
    return f"itree{tree + 1}n{node}"


def _output_node_name(tree: int, node: int) -> str:
    return f"otree{tree + 1}n{node}"


def _leaf_endpoint(n: int, leaf: int) -> Tuple[int, str]:
    """Return (heap node, branch port suffix) addressing leaf ``leaf`` of a tree."""
    node = (n + leaf) // 2
    branch = "1" if leaf % 2 == 0 else "2"
    return node, branch


def spanke_fabric(n: int) -> SwitchFabric:
    """Build the ``n x n`` Spanke fabric (``n`` must be a power of two)."""
    _check_power_of_two(n)
    elements: Dict[str, SwitchElement] = {}
    connections: Dict[str, str] = {}
    ports: Dict[str, str] = {}

    for tree in range(n):
        # Input-side 1xN tree of switch1x2 elements.
        for node in range(1, n):
            name = _input_node_name(tree, node)
            elements[name] = SwitchElement(
                name=name, kind="switch1x2", metadata={"tree": tree, "node": node, "side": 0}
            )
        for node in range(1, n // 2):
            connections[f"{_input_node_name(tree, node)},O1"] = (
                f"{_input_node_name(tree, 2 * node)},I1"
            )
            connections[f"{_input_node_name(tree, node)},O2"] = (
                f"{_input_node_name(tree, 2 * node + 1)},I1"
            )
        ports[f"I{tree + 1}"] = f"{_input_node_name(tree, 1)},I1"

        # Output-side Nx1 tree of switch2x1 elements.
        for node in range(1, n):
            name = _output_node_name(tree, node)
            elements[name] = SwitchElement(
                name=name, kind="switch2x1", metadata={"tree": tree, "node": node, "side": 1}
            )
        for node in range(1, n // 2):
            connections[f"{_output_node_name(tree, 2 * node)},O1"] = (
                f"{_output_node_name(tree, node)},I1"
            )
            connections[f"{_output_node_name(tree, 2 * node + 1)},O1"] = (
                f"{_output_node_name(tree, node)},I2"
            )
        ports[f"O{tree + 1}"] = f"{_output_node_name(tree, 1)},O1"

    # Full interconnect: leaf j of input tree i feeds leaf i of output tree j.
    for inp in range(n):
        for out in range(n):
            in_node, in_branch = _leaf_endpoint(n, out)
            out_node, out_branch = _leaf_endpoint(n, inp)
            connections[f"{_input_node_name(inp, in_node)},O{in_branch}"] = (
                f"{_output_node_name(out, out_node)},I{out_branch}"
            )
    return SwitchFabric(
        architecture="spanke",
        size=n,
        elements=elements,
        connections=connections,
        ports=ports,
    )


def route_spanke(n: int, permutation: Sequence[int]) -> Dict[str, int]:
    """Return the element states routing ``permutation`` through a Spanke fabric."""
    depth = _check_power_of_two(n)
    perm = validate_permutation(permutation, n)
    states: Dict[str, int] = {}
    for inp, out in enumerate(perm):
        # Program the path root -> leaf ``out`` in input tree ``inp``.
        node = 1
        for level in range(depth):
            bit = (out >> (depth - 1 - level)) & 1
            states[_input_node_name(inp, node)] = 2 if bit else 1
            node = 2 * node + bit
        # Program the path leaf ``inp`` -> root in output tree ``out``.
        node = 1
        for level in range(depth):
            bit = (inp >> (depth - 1 - level)) & 1
            states[_output_node_name(out, node)] = 2 if bit else 1
            node = 2 * node + bit
    return states
