"""Optical switch fabrics: topologies, netlist lowering and permutation routing."""

from typing import Dict, Sequence

from .benes import benes_element_count, benes_fabric, route_benes
from .crossbar import crossbar_fabric, route_crossbar
from .elementary import OS2X2_BAR_PHASE, OS2X2_CROSS_PHASE, os2x2_netlist
from .fabric import SwitchElement, SwitchFabric, validate_permutation
from .spanke import route_spanke, spanke_fabric
from .spanke_benes import route_spanke_benes, spanke_benes_columns, spanke_benes_fabric

__all__ = [
    "SwitchElement",
    "SwitchFabric",
    "validate_permutation",
    "crossbar_fabric",
    "route_crossbar",
    "spanke_fabric",
    "route_spanke",
    "benes_fabric",
    "route_benes",
    "benes_element_count",
    "spanke_benes_fabric",
    "route_spanke_benes",
    "spanke_benes_columns",
    "os2x2_netlist",
    "OS2X2_BAR_PHASE",
    "OS2X2_CROSS_PHASE",
    "build_fabric",
    "route_fabric",
]

_FABRIC_BUILDERS = {
    "crossbar": crossbar_fabric,
    "spanke": spanke_fabric,
    "benes": benes_fabric,
    "spankebenes": spanke_benes_fabric,
}

_FABRIC_ROUTERS = {
    "crossbar": route_crossbar,
    "spanke": route_spanke,
    "benes": route_benes,
    "spankebenes": route_spanke_benes,
}


def build_fabric(architecture: str, size: int) -> SwitchFabric:
    """Build a switch fabric by architecture name (see :data:`_FABRIC_BUILDERS`)."""
    try:
        builder = _FABRIC_BUILDERS[architecture]
    except KeyError as exc:
        raise ValueError(
            f"unknown architecture {architecture!r}; "
            f"available: {sorted(_FABRIC_BUILDERS)}"
        ) from exc
    return builder(size)


def route_fabric(architecture: str, size: int, permutation: Sequence[int]) -> Dict[str, object]:
    """Route a permutation through a fabric, returning per-element states."""
    try:
        router = _FABRIC_ROUTERS[architecture]
    except KeyError as exc:
        raise ValueError(
            f"unknown architecture {architecture!r}; "
            f"available: {sorted(_FABRIC_ROUTERS)}"
        ) from exc
    return dict(router(size, permutation))
