"""Elementary switch cells built from interferometric components.

The benchmark's ``OS 2x2`` problem asks for a fundamental 2x2 optical switch.
The golden design is the classic MZI switch: two 2x2 MMIs with a phase shifter
in the upper arm.  With the phase shifter at its default (0 rad) the cell is
in the cross state; driving the shifter to ``pi`` puts it in the bar state.
"""

from __future__ import annotations

import math
from typing import Dict

from ..netlist.schema import Instance, Netlist

__all__ = ["os2x2_netlist", "OS2X2_BAR_PHASE", "OS2X2_CROSS_PHASE"]

#: Phase-shifter setting (radians) that puts the MZI switch in the cross state.
OS2X2_CROSS_PHASE = 0.0

#: Phase-shifter setting (radians) that puts the MZI switch in the bar state.
OS2X2_BAR_PHASE = math.pi


def os2x2_netlist(*, phase: float | None = None, arm_length: float = 10.0) -> Netlist:
    """Build the MZI-based 2x2 optical switch netlist.

    Parameters
    ----------
    phase:
        Optional phase-shifter setting; ``None`` (the golden structural
        design) leaves the shifter at its default.
    arm_length:
        Length of both arms in microns (kept equal so the cell is
        wavelength flat).
    """
    shifter_settings: Dict[str, object] = {"length": arm_length}
    if phase is not None:
        shifter_settings["phase"] = float(phase)
    instances = {
        "mmiIn": Instance("mmi2x2"),
        "psTop": Instance("phase_shifter", shifter_settings),
        "wgBottom": Instance("waveguide", {"length": arm_length}),
        "mmiOut": Instance("mmi2x2"),
    }
    connections = {
        "mmiIn,O1": "psTop,I1",
        "psTop,O1": "mmiOut,I1",
        "mmiIn,O2": "wgBottom,I1",
        "wgBottom,O1": "mmiOut,I2",
    }
    ports = {
        "I1": "mmiIn,I1",
        "I2": "mmiIn,I2",
        "O1": "mmiOut,O1",
        "O2": "mmiOut,O2",
    }
    models = {
        "mmi2x2": "mmi2x2",
        "phase_shifter": "phase_shifter",
        "waveguide": "waveguide",
    }
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)
