"""Spanke-Benes (planar) switching network.

The Spanke-Benes arrangement places ``N (N - 1) / 2`` 2x2 switches in ``N``
columns with nearest-neighbour connectivity only (no waveguide crossings):
even columns host switches on mode pairs ``(0,1), (2,3), ...`` and odd columns
on pairs ``(1,2), (3,4), ...``.  Routing a permutation is equivalent to
sorting the destination labels with an odd-even transposition sorting network,
which completes in ``N`` passes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .fabric import SwitchElement, SwitchFabric, validate_permutation

__all__ = ["spanke_benes_fabric", "route_spanke_benes", "spanke_benes_columns"]


def spanke_benes_columns(n: int) -> List[List[int]]:
    """Return, per column, the upper mode index of every switch in that column."""
    if n < 2:
        raise ValueError(f"Spanke-Benes size must be at least 2, got {n}")
    columns: List[List[int]] = []
    for column in range(n):
        start = column % 2
        columns.append(list(range(start, n - 1, 2)))
    return columns


def _element_name(column: int, mode: int) -> str:
    return f"swc{column + 1}m{mode + 1}"


def spanke_benes_fabric(n: int) -> SwitchFabric:
    """Build the ``n x n`` Spanke-Benes (planar) fabric."""
    columns = spanke_benes_columns(n)
    elements: Dict[str, SwitchElement] = {}
    connections: Dict[str, str] = {}
    frontier: List[str] = [""] * n  # open endpoint of each mode, "" = external input
    input_attachment: List[str] = [""] * n

    for column, modes in enumerate(columns):
        for mode in modes:
            name = _element_name(column, mode)
            elements[name] = SwitchElement(
                name=name, kind="switch2x2", metadata={"column": column, "mode": mode}
            )
            for offset, in_port, out_port in ((0, "I1", "O1"), (1, "I2", "O2")):
                lane = mode + offset
                endpoint = f"{name},{in_port}"
                if frontier[lane]:
                    connections[frontier[lane]] = endpoint
                else:
                    input_attachment[lane] = endpoint
                frontier[lane] = f"{name},{out_port}"

    ports: Dict[str, str] = {}
    for lane in range(n):
        ports[f"I{lane + 1}"] = input_attachment[lane]
        ports[f"O{lane + 1}"] = frontier[lane]
    return SwitchFabric(
        architecture="spankebenes",
        size=n,
        elements=elements,
        connections=connections,
        ports=ports,
    )


def route_spanke_benes(n: int, permutation: Sequence[int]) -> Dict[str, str]:
    """Return the element states routing ``permutation`` through the planar fabric.

    The switch states are obtained by running an odd-even transposition sort on
    the destination labels: at each comparator, the switch is crossed when the
    labels on its two lanes are out of order.
    """
    perm = validate_permutation(permutation, n)
    labels = list(perm)
    states: Dict[str, str] = {}
    for column, modes in enumerate(spanke_benes_columns(n)):
        for mode in modes:
            name = _element_name(column, mode)
            if labels[mode] > labels[mode + 1]:
                states[name] = "cross"
                labels[mode], labels[mode + 1] = labels[mode + 1], labels[mode]
            else:
                states[name] = "bar"
    if labels != sorted(labels):
        raise RuntimeError(
            "odd-even transposition routing failed to sort the destination labels"
        )
    return states
