"""Crossbar switching network.

An ``N x N`` crossbar uses ``N^2`` 2x2 switch elements arranged in a grid.
Input ``i`` travels along row ``i``; setting the element at row ``i`` and
column ``j`` to the cross state drops the signal onto column ``j``, which
carries it to output ``j``.  Exactly one element per row/column pair is
crossed for any permutation, so routing is conflict free.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .fabric import SwitchElement, SwitchFabric, validate_permutation

__all__ = ["crossbar_fabric", "route_crossbar"]


def _element_name(row: int, column: int) -> str:
    return f"swr{row + 1}c{column + 1}"


def crossbar_fabric(n: int) -> SwitchFabric:
    """Build the ``n x n`` crossbar fabric.

    Element ``swr{i}c{j}`` ports: ``I1`` row input (from the left), ``I2``
    column input (from above), ``O1`` row output (to the right), ``O2`` column
    output (downwards).
    """
    if n < 2:
        raise ValueError(f"crossbar size must be at least 2, got {n}")
    elements: Dict[str, SwitchElement] = {}
    connections: Dict[str, str] = {}
    for row in range(n):
        for column in range(n):
            name = _element_name(row, column)
            elements[name] = SwitchElement(
                name=name, kind="switch2x2", metadata={"row": row, "column": column}
            )
    for row in range(n):
        for column in range(n - 1):
            connections[f"{_element_name(row, column)},O1"] = (
                f"{_element_name(row, column + 1)},I1"
            )
    for column in range(n):
        for row in range(n - 1):
            connections[f"{_element_name(row, column)},O2"] = (
                f"{_element_name(row + 1, column)},I2"
            )
    ports: Dict[str, str] = {}
    for row in range(n):
        ports[f"I{row + 1}"] = f"{_element_name(row, 0)},I1"
    for column in range(n):
        ports[f"O{column + 1}"] = f"{_element_name(n - 1, column)},O2"
    return SwitchFabric(
        architecture="crossbar",
        size=n,
        elements=elements,
        connections=connections,
        ports=ports,
    )


def route_crossbar(n: int, permutation: Sequence[int]) -> Dict[str, str]:
    """Return the element states routing ``permutation`` through the crossbar.

    ``permutation[i]`` is the output index that input ``i`` must reach.
    """
    perm = validate_permutation(permutation, n)
    states: Dict[str, str] = {}
    for row in range(n):
        for column in range(n):
            states[_element_name(row, column)] = "bar"
    for row, column in enumerate(perm):
        states[_element_name(row, column)] = "cross"
    return states
