"""Common infrastructure for optical switch fabrics.

A :class:`SwitchFabric` is a structural description of a switching network:
its switch elements, the static waveguide connections between them, and its
external ports.  It can be lowered to a benchmark netlist (with default or
explicit switch states) and asked to route a permutation, returning the state
assignment that realises it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..netlist.schema import Instance, Netlist

__all__ = ["SwitchElement", "SwitchFabric", "validate_permutation"]


def validate_permutation(permutation: Sequence[int], size: int) -> Tuple[int, ...]:
    """Check that ``permutation`` is a permutation of ``range(size)`` and return it."""
    perm = tuple(int(p) for p in permutation)
    if sorted(perm) != list(range(size)):
        raise ValueError(
            f"{list(permutation)} is not a permutation of 0..{size - 1}"
        )
    return perm


@dataclass
class SwitchElement:
    """One switch element of a fabric.

    Attributes
    ----------
    name:
        Instance name used in the netlist (alphanumeric, no underscores).
    kind:
        Model reference: ``switch2x2``, ``switch1x2`` or ``switch2x1``.
    metadata:
        Topology bookkeeping used by the routing algorithms (row/column,
        stage index, tree position, ...).
    """

    name: str
    kind: str
    metadata: Dict[str, int] = field(default_factory=dict)


@dataclass
class SwitchFabric:
    """A switch-fabric topology that can be lowered to a netlist.

    Attributes
    ----------
    architecture:
        One of ``crossbar``, ``spanke``, ``benes``, ``spankebenes`` or ``os``.
    size:
        Number of inputs / outputs (``N`` of an ``N x N`` fabric).
    elements:
        The switch elements, keyed by instance name.
    connections:
        Static waveguide connections between element ports.
    ports:
        External port map (``I1..IN`` and ``O1..ON``).
    """

    architecture: str
    size: int
    elements: Dict[str, SwitchElement]
    connections: Dict[str, str]
    ports: Dict[str, str]

    @property
    def num_elements(self) -> int:
        """Number of switch elements in the fabric."""
        return len(self.elements)

    def element_kinds(self) -> Tuple[str, ...]:
        """The set of switch models the fabric uses (for the models section)."""
        return tuple(sorted({element.kind for element in self.elements.values()}))

    def to_netlist(self, states: Optional[Mapping[str, object]] = None) -> Netlist:
        """Lower the fabric to a netlist.

        Parameters
        ----------
        states:
            Optional mapping of element name to switch state (``"bar"`` /
            ``"cross"`` for 2x2 elements, ``1`` / ``2`` for the gate switches).
            Elements not present keep their model defaults, which is what the
            benchmark's golden (structural) designs use.
        """
        states = dict(states or {})
        unknown = sorted(set(states) - set(self.elements))
        if unknown:
            raise KeyError(f"states reference unknown elements: {unknown}")
        instances: Dict[str, Instance] = {}
        for name, element in self.elements.items():
            settings: Dict[str, object] = {}
            if name in states:
                settings["state"] = states[name]
            instances[name] = Instance(element.kind, settings)
        models = {kind: kind for kind in self.element_kinds()}
        return Netlist(
            instances=instances,
            connections=dict(self.connections),
            ports=dict(self.ports),
            models=models,
        )

    # ------------------------------------------------------------------
    # Verification helper
    # ------------------------------------------------------------------
    def permutation_matrix(self, permutation: Sequence[int]) -> np.ndarray:
        """Return the ideal power-transmission matrix of a routed permutation.

        Entry ``[j, i]`` is 1 when input ``i`` is routed to output ``j``.
        """
        perm = validate_permutation(permutation, self.size)
        matrix = np.zeros((self.size, self.size))
        for inp, out in enumerate(perm):
            matrix[out, inp] = 1.0
        return matrix
