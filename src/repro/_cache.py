"""Generic thread-safe LRU cache shared by the simulator and the engine.

This lives at the package root (rather than inside :mod:`repro.engine`) so
that :mod:`repro.sim.circuit` can use the same implementation for its
per-instance sub-cache without importing the engine package -- the engine
depends on the simulator, never the other way around.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Optional, TypeVar

__all__ = ["CacheStats", "LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Hit/miss counters of one cache tier."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_corrupt: int = 0
    disk_retries: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (for logs and benchmark tables)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_corrupt": self.disk_corrupt,
            "disk_retries": self.disk_retries,
        }


class LRUCache(Generic[K, V]):
    """A bounded, thread-safe mapping with LRU eviction.

    ``max_entries <= 0`` disables the cache entirely (every lookup misses),
    which gives benchmarks an uncached baseline without code changes.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = int(max_entries)
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: K) -> Optional[V]:
        """Return the cached value (refreshing its recency) or ``None``."""
        with self._lock:
            if key not in self._data:
                self.stats.misses += 1
                return None
            self._data.move_to_end(key)
            self.stats.hits += 1
            return self._data[key]

    def peek(self, key: K) -> Optional[V]:
        """Like :meth:`get` but without touching stats or recency.

        For planning decisions ("would this hit?") that precede the real
        lookup, so hit/miss counters keep meaning one probe per consumer.
        """
        with self._lock:
            return self._data.get(key)

    def put(self, key: K, value: V) -> None:
        """Insert ``value``, evicting the least recently used entry if full."""
        if self.max_entries <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            self.stats.stores += 1
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the stats counters are kept)."""
        with self._lock:
            self._data.clear()
