"""Optical computing scenario: program a Clements mesh to a target unitary.

The benchmark's optical-computing problems ask for the *structure* of Reck and
Clements meshes; this example goes one step further and programs the mesh:

1. draw a Haar-random 4x4 unitary (e.g. a layer of an optical neural network),
2. decompose it into MZI phases with the Clements algorithm,
3. lower the programmed mesh to a netlist and simulate it,
4. verify that the simulated circuit implements the target matrix.

Run with ``python examples/program_clements_mesh.py``.
"""

from __future__ import annotations

import numpy as np

from repro.meshes import clements_decomposition, clements_mesh_netlist, random_unitary
from repro.sim import evaluate_netlist


def realised_matrix(netlist, size: int) -> np.ndarray:
    """Extract the input->output transfer matrix of a simulated mesh at 1550 nm."""
    smatrix = evaluate_netlist(netlist, np.array([1.55]))
    return np.array(
        [
            [smatrix.s(f"O{row + 1}", f"I{col + 1}")[0] for col in range(size)]
            for row in range(size)
        ]
    )


def main() -> None:
    size = 4
    target = random_unitary(size, seed=2025)
    print(f"Target {size}x{size} unitary (magnitudes):")
    print(np.round(np.abs(target), 3))

    decomposition = clements_decomposition(target)
    print(f"\nClements decomposition: {len(decomposition.placements)} MZIs "
          f"({decomposition.scheme} arrangement)")
    for index, placement in enumerate(decomposition.placements, start=1):
        print(f"  mzi{index}: modes ({placement.mode + 1},{placement.mode + 2})  "
              f"theta={placement.theta:+.3f}  phi={placement.phi:+.3f}")

    netlist = clements_mesh_netlist(size, target)
    print(f"\nNetlist: {netlist.num_instances()} instances, "
          f"{len(netlist.connections)} connections")

    realised = realised_matrix(netlist, size)
    fidelity = np.abs(np.trace(target.conj().T @ realised)) / size
    error = np.max(np.abs(realised - target))
    print(f"\nSimulated mesh fidelity |tr(U^dagger S)|/N = {fidelity:.6f}")
    print(f"Worst-case element error                      = {error:.2e}")
    if error < 1e-6:
        print("The programmed mesh reproduces the target unitary.")
    else:
        raise SystemExit("programming error: the mesh does not match the target")


if __name__ == "__main__":
    main()
