"""Optical switching scenario: route traffic through an 8x8 Benes network.

The benchmark's optical-switch problems ask for the fabric topologies; this
example exercises them as a data-centre interconnect would:

1. build the 8x8 Benes fabric (20 switch elements),
2. route a sequence of permutations with the looping algorithm,
3. simulate each configuration and report the insertion loss and worst-case
   crosstalk of every routed connection.

Run with ``python examples/route_benes_switch.py``.
"""

from __future__ import annotations

import numpy as np

from repro.constants import default_wavelength_grid
from repro.sim import evaluate_netlist
from repro.switching import benes_fabric, route_benes


def evaluate_routing(fabric, permutation, wavelengths) -> None:
    states = route_benes(fabric.size, permutation)
    netlist = fabric.to_netlist(states)
    smatrix = evaluate_netlist(netlist, wavelengths)

    print(f"\nPermutation {list(permutation)}")
    print(f"  crossed elements: "
          f"{sum(1 for s in states.values() if s == 'cross')} / {len(states)}")
    worst_loss_db = 0.0
    worst_xtalk_db = -np.inf
    for inp, out in enumerate(permutation):
        signal = smatrix.transmission(f"O{out + 1}", f"I{inp + 1}").mean()
        loss_db = -10 * np.log10(max(signal, 1e-30))
        worst_loss_db = max(worst_loss_db, loss_db)
        for other in range(fabric.size):
            if other == out:
                continue
            leak = smatrix.transmission(f"O{other + 1}", f"I{inp + 1}").max()
            worst_xtalk_db = max(worst_xtalk_db, 10 * np.log10(max(leak, 1e-30)))
    print(f"  worst insertion loss : {worst_loss_db:6.3f} dB")
    print(f"  worst crosstalk      : {worst_xtalk_db:6.1f} dB")


def main() -> None:
    size = 8
    fabric = benes_fabric(size)
    print(f"Benes {size}x{size}: {fabric.num_elements} switch elements, "
          f"{len(fabric.connections)} waveguide connections")

    wavelengths = default_wavelength_grid(21)
    rng = np.random.default_rng(7)
    permutations = [
        tuple(range(size)),                     # straight-through
        tuple(reversed(range(size))),           # full reversal
        tuple(int(x) for x in rng.permutation(size)),
        tuple(int(x) for x in rng.permutation(size)),
    ]
    for permutation in permutations:
        evaluate_routing(fabric, permutation, wavelengths)


if __name__ == "__main__":
    main()
