"""Run the PICBench evaluation loop on a (simulated) LLM designer.

This is the Fig. 1 flow end to end: system prompt with restrictions, problem
description, generation, syntax check through the simulator, functional check
against the golden response, classified error feedback, and the Pass@k scores
of Tables III/IV -- here on a small problem subset so it finishes in seconds.

To evaluate a real LLM instead of the offline simulated designer, wrap your
API call in :class:`repro.llm.CallableLLM`::

    def call_my_api(messages):
        ...  # POST to your provider, return the assistant text
    client = CallableLLM("my-model", call_my_api)
    report = run_model(client, include_restrictions=True, config=config)

Run with ``python examples/evaluate_designer.py``.
"""

from __future__ import annotations

from repro.harness import SweepConfig, run_model
from repro.llm import SimulatedDesigner

PROBLEM_SUBSET = (
    "mzi_ps",
    "mzm",
    "direct_modulator",
    "optical_hybrid",
    "os_2x2",
    "wdm_demux",
    "benes_4x4",
    "clements_4x4",
)


def main() -> None:
    config = SweepConfig(
        samples_per_problem=5,
        max_feedback_iterations=3,
        num_wavelengths=41,
        problems=PROBLEM_SUBSET,
    )
    designer = SimulatedDesigner("Claude 3.5 Sonnet")

    print(f"Evaluating {designer.name} on {len(PROBLEM_SUBSET)} problems, "
          f"{config.samples_per_problem} samples each, with restrictions...\n")
    report = run_model(designer, include_restrictions=True, config=config)

    header = f"{'metric':<14}" + "".join(f"{f'{ef} EF':>10}" for ef in (0, 1, 3))
    print(header)
    for metric in ("syntax", "functional"):
        for k in (1, 5):
            row = f"pass@{k} {metric[:4]:<6}"
            for ef in (0, 1, 3):
                row += f"{report.pass_at_k(k, metric=metric, max_feedback=ef):>10.2f}"
            print(row)

    print("\nError classes observed across failed attempts:")
    for category, count in sorted(report.error_breakdown().items(), key=lambda kv: -kv[1]):
        print(f"  {category.display_name:<45} {count}")


if __name__ == "__main__":
    main()
