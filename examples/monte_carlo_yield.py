"""Monte-Carlo fabrication-yield analysis over the batched executor.

This walks the ``variability`` pack's yield workflow end to end:

1. take a nominal design (the pack's add/drop ring filter, a genuine
   feedback cluster),
2. draw seeded Gaussian fabrication corners perturbing its coupler ratios
   and waveguide losses,
3. push the whole draw stack through the batched settings-axis executor
   (one compiled plan, a handful of fused executor passes instead of one
   pass per draw), and
4. score every draw against a drop-port transmission spec.

Run with ``PYTHONPATH=src python examples/monte_carlo_yield.py``.
"""

from __future__ import annotations

import numpy as np

from repro.bench.problems.variability import (
    YieldSpec,
    monte_carlo_settings,
    monte_carlo_yield,
    ring_filter_nominal,
)
from repro.constants import default_wavelength_grid
from repro.engine import EngineConfig, ExecutionEngine

#: Number of fabrication draws (kept small so the example runs in seconds).
DRAWS = 48

#: Wavelength grid of the analysis (a coarse slice of the evaluation band).
WAVELENGTHS = default_wavelength_grid(41)


def main() -> int:
    """Run the yield analysis and print a small report."""
    netlist = ring_filter_nominal()
    # The spec: the drop port must peak above 30% power transmission
    # somewhere in the band (the ring still resonates despite the corner).
    spec = YieldSpec("O2", "I1", min_transmission=0.30, metric="max")

    # An engine with a batch size: draws fuse into batched executor passes
    # and land in the content-addressed simulation cache under the very same
    # keys individual evaluations would use.
    engine = ExecutionEngine(EngineConfig(batch_size=16))

    result = monte_carlo_yield(
        netlist,
        spec,
        draws=DRAWS,
        seed=42,
        wavelengths=WAVELENGTHS,
        engine=engine,
        sigma_coupling=0.03,
        sigma_loss_db_cm=1.0,
    )

    print(f"draws:           {result.draws}")
    print(f"passes:          {result.passes}")
    print(f"yield:           {result.yield_fraction:.1%}")
    print(f"worst drop peak: {min(result.metrics):.3f}")
    print(f"best drop peak:  {max(result.metrics):.3f}")

    # The same draws are reproducible sample by sample ...
    batches = monte_carlo_settings(
        netlist, DRAWS, seed=42, sigma_coupling=0.03, sigma_loss_db_cm=1.0
    )
    print(f"corner 0 bus coupling: {batches[0]['cpBus']['coupling']}")

    # ... and the engine's stats show the batching at work.
    stats = engine.stats()
    print(f"fused executor passes: {stats['solver_batch']['executor_passes']}")
    print(f"batch fusion rate:     {stats['batch_fusion_rate']:.1%}")

    assert result.draws == DRAWS
    assert 0.0 <= result.yield_fraction <= 1.0
    assert np.all(np.asarray(result.metrics) >= 0.0)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
