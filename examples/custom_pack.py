"""A minimal third-party problem pack: binary splitter trees.

This is the worked example of ``docs/AUTHORING_PROBLEMS.md``: a complete,
runnable problem pack in ~100 lines.  It defines a parametric family of
1-to-2^depth power-splitter trees built from the built-in ``mmi1x2``, wraps
them in a :class:`repro.bench.ProblemPack`, registers the pack, and then
exercises it end to end -- enumeration, Table I-style listing, and a perfect-
designer evaluation through the real evaluation loop.

Run with ``PYTHONPATH=src python examples/custom_pack.py``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench import ProblemPack, all_problems, register_pack
from repro.bench.problem import Problem
from repro.evalkit import EvaluationConfig, Evaluator
from repro.harness import table1_text
from repro.llm import PerfectDesigner
from repro.netlist import Instance, Netlist, validate_netlist
from repro.netlist.validation import PortSpec

#: Category label of every problem in the pack.
CATEGORY = "Power Splitters"

#: Default generation parameters: one problem per tree depth.
DEFAULT_PARAMS = {"depths": (1, 2, 3)}


# ----------------------------------------------------------------------
# Step 1 -- the golden design factory
# ----------------------------------------------------------------------
def splitter_tree_golden(depth: int) -> Netlist:
    """Golden netlist of a 1-to-2^depth splitter tree of mmi1x2 devices.

    Splitters are numbered heap-style: splitter ``k`` feeds splitters ``2k``
    and ``2k + 1``; the last level's outputs become the external outputs.
    """
    num_splitters = 2**depth - 1
    instances = {f"split{k}": Instance("mmi1x2") for k in range(1, num_splitters + 1)}
    connections: Dict[str, str] = {}
    ports: Dict[str, str] = {"I1": "split1,I1"}
    for k in range(1, num_splitters + 1):
        for branch, output in ((0, "O1"), (1, "O2")):
            child = 2 * k + branch
            if child <= num_splitters:
                connections[f"split{k},{output}"] = f"split{child},I1"
    leaves = range(2 ** (depth - 1), 2**depth)
    for index, leaf in enumerate(leaves):
        ports[f"O{2 * index + 1}"] = f"split{leaf},O1"
        ports[f"O{2 * index + 2}"] = f"split{leaf},O2"
    return Netlist(
        instances=instances,
        connections=connections,
        ports=ports,
        models={"mmi1x2": "mmi1x2"},
    )


# ----------------------------------------------------------------------
# Step 2 -- the problem descriptions
# ----------------------------------------------------------------------
def _description(depth: int) -> str:
    """Natural-language task statement of one splitter-tree problem."""
    outputs = 2**depth
    return (
        f"Create a 1-to-{outputs} optical power splitter as a binary tree of "
        f"built-in 1x2 multimode interferometers (mmi1x2) with {depth} "
        "levels. The single input feeds the root splitter; each splitter "
        "output feeds the input of a splitter on the next level, and the "
        f"outputs of the final level are the {outputs} external outputs, in "
        "top-to-bottom order. Use default values for every parameter.\n"
        f"Ports: 1 input (I1), {outputs} outputs (O1..O{outputs})."
    )


# ----------------------------------------------------------------------
# Step 3 -- the parametric problem builder
# ----------------------------------------------------------------------
def build_problems(params: Dict[str, object]) -> List[Problem]:
    """Build one splitter-tree problem per requested depth."""
    problems: List[Problem] = []
    for depth in params["depths"]:  # type: ignore[attr-defined]
        depth = int(depth)
        outputs = 2**depth
        problems.append(
            Problem(
                name=f"splitter_tree_{outputs}way",
                title=f"Splitter tree 1x{outputs}",
                category=CATEGORY,
                summary=f"A 1-to-{outputs} binary splitter tree",
                description=_description(depth),
                golden_factory=lambda depth=depth: splitter_tree_golden(depth),
                port_spec=PortSpec(num_inputs=1, num_outputs=outputs),
            )
        )
    return problems


# ----------------------------------------------------------------------
# Step 4 -- the pack itself
# ----------------------------------------------------------------------
def make_pack() -> ProblemPack:
    """Build (but do not register) the splitter-tree pack."""
    return ProblemPack(
        name="splitter-trees",
        title="Splitter trees",
        description=(
            "Parametric 1-to-2^depth optical power splitter trees built "
            "from cascaded 1x2 multimode interferometers."
        ),
        categories=(CATEGORY,),
        builder=build_problems,
        default_params=DEFAULT_PARAMS,
    )


def register(replace_existing: bool = True) -> ProblemPack:
    """Register the pack so suites, sweeps and the CLI can enumerate it."""
    return register_pack(make_pack(), replace_existing=replace_existing)


# ----------------------------------------------------------------------
# Step 5 -- use it end to end
# ----------------------------------------------------------------------
def main() -> None:
    """Register the pack and run it through the real evaluation loop."""
    register()

    problems = all_problems("splitter-trees")
    print(f"pack 'splitter-trees' enumerates {len(problems)} problems:")
    for problem in problems:
        validate_netlist(problem.golden_netlist(), port_spec=problem.port_spec)
        print(f"  {problem.name:>22}  ({problem.complexity} golden instances)")
    print()
    print(table1_text("splitter-trees"))
    print()

    evaluator = Evaluator(EvaluationConfig(samples_per_problem=1, num_wavelengths=11))
    report = evaluator.run_suite(PerfectDesigner(), problems)
    print(
        f"PerfectDesigner on pack {report.pack!r}: "
        f"syntax Pass@1 = {report.pass_at_k(1, metric='syntax'):.1f}%, "
        f"functionality Pass@1 = {report.pass_at_k(1, metric='functional'):.1f}%"
    )


if __name__ == "__main__":
    main()
