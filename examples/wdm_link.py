"""Optical interconnect scenario: a 4-channel WDM link.

Builds the benchmark's WDM multiplexer and demultiplexer golden designs,
cascades them back to back into a full link, and reports per-channel insertion
loss and adjacent-channel crosstalk across the 1510-1590 nm band -- the kind of
analysis a designer would run right after generating the netlists with an LLM.

Run with ``python examples/wdm_link.py``.
"""

from __future__ import annotations

import numpy as np

from repro.bench.problems.interconnects import (
    WDM_CHANNEL_RADII,
    wdm_demux_golden,
    wdm_mux_golden,
)
from repro.constants import default_wavelength_grid
from repro.netlist import Instance, Netlist, compose_netlists, validate_netlist
from repro.sim import evaluate_netlist


def build_link_netlist() -> Netlist:
    """Mux -> 500 um bus waveguide -> demux, composed from the golden sub-circuits."""
    bus = Netlist(
        instances={"wg": Instance("waveguide", {"length": 500.0})},
        ports={"I1": "wg,I1", "O1": "wg,O1"},
        models={"waveguide": "waveguide"},
    )
    link = compose_netlists(
        {"tx": wdm_mux_golden(), "bus": bus, "rx": wdm_demux_golden()},
        links={"tx:O1": "bus:I1", "bus:O1": "rx:I1"},
        ports={
            **{f"I{index}": f"tx:I{index}" for index in range(1, 5)},
            **{f"O{index}": f"rx:O{index}" for index in range(1, 5)},
        },
    )
    validate_netlist(link)
    return link


def main() -> None:
    link = build_link_netlist()
    wavelengths = default_wavelength_grid(161)
    smatrix = evaluate_netlist(link, wavelengths)

    print(f"WDM link: {link.num_instances()} instances "
          f"({len(WDM_CHANNEL_RADII)} channels, ring radii {WDM_CHANNEL_RADII} um)\n")
    print(f"{'channel':>8} | {'peak wavelength':>16} | {'insertion loss':>15} | {'worst crosstalk':>16}")
    print("-" * 66)
    for channel in range(1, 5):
        through = smatrix.transmission(f"O{channel}", f"I{channel}")
        peak_index = int(np.argmax(through))
        peak_wl_nm = wavelengths[peak_index] * 1000
        loss_db = -10 * np.log10(max(through[peak_index], 1e-30))
        crosstalk = max(
            smatrix.transmission(f"O{channel}", f"I{other}")[peak_index]
            for other in range(1, 5)
            if other != channel
        )
        crosstalk_db = 10 * np.log10(max(crosstalk, 1e-30))
        print(f"{channel:>8} | {peak_wl_nm:13.1f} nm | {loss_db:12.2f} dB | {crosstalk_db:13.1f} dB")


if __name__ == "__main__":
    main()
