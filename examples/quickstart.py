"""Quickstart: build, simulate and evaluate a PIC netlist.

This walks through the three layers of the library in ~60 lines:

1. describe a circuit as a JSON-style netlist (the paper's Fig. 3 format),
2. simulate its frequency response with the S-parameter solver,
3. evaluate it against a benchmark problem exactly as PICBench would.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro.bench import get_problem, golden_response
from repro.constants import default_wavelength_grid
from repro.netlist import Instance, Netlist, validate_netlist
from repro.prompts import build_system_prompt
from repro.sim import compare_responses, evaluate_netlist


def build_mzi_netlist() -> Netlist:
    """The MZI-with-phase-shifter design of the paper's Fig. 2."""
    return Netlist(
        instances={
            "mmi1": Instance("mmi1x2"),
            "phaseShifter": Instance("phase_shifter", {"length": 10.0}),
            "waveBottom": Instance("waveguide", {"length": 20.0}),
            "mmi2": Instance("mmi2x1"),
        },
        connections={
            "mmi1,O1": "phaseShifter,I1",
            "phaseShifter,O1": "mmi2,I1",
            "mmi1,O2": "waveBottom,I1",
            "waveBottom,O1": "mmi2,I2",
        },
        ports={"I1": "mmi1,I1", "O1": "mmi2,O1"},
        models={
            "mmi1x2": "mmi1x2",
            "mmi2x1": "mmi2x1",
            "phase_shifter": "phase_shifter",
            "waveguide": "waveguide",
        },
    )


def ascii_spectrum(wavelengths: np.ndarray, transmission: np.ndarray, width: int = 48) -> str:
    """Tiny ASCII plot of a transmission spectrum."""
    lines = []
    for wl, t in zip(wavelengths[:: max(1, len(wavelengths) // 24)],
                     transmission[:: max(1, len(wavelengths) // 24)]):
        bar = "#" * int(round(t * width))
        lines.append(f"{wl * 1000:7.1f} nm |{bar:<{width}}| {t:5.3f}")
    return "\n".join(lines)


def main() -> None:
    # 1. Build and validate the netlist.
    netlist = build_mzi_netlist()
    validate_netlist(netlist)
    print("Netlist JSON (the format the LLM must produce):")
    print(netlist.to_json())

    # 2. Simulate the frequency response over the 1510-1590 nm band.
    wavelengths = default_wavelength_grid(97)
    smatrix = evaluate_netlist(netlist, wavelengths)
    transmission = smatrix.transmission("O1", "I1")
    print("\nTransmission |S(O1, I1)|^2 across the band:")
    print(ascii_spectrum(wavelengths, transmission))

    # 3. Evaluate against the benchmark problem, as PICBench would.
    problem = get_problem("mzi_ps")
    golden = golden_response(problem, num_wavelengths=97)
    comparison = compare_responses(smatrix, golden)
    print(f"\nFunctional check against the '{problem.title}' golden design: "
          f"{'PASS' if comparison.passed else 'FAIL'} "
          f"(max |S|^2 deviation {comparison.max_abs_error:.2e})")

    # Bonus: this is the system prompt an LLM would receive (Fig. 3).
    prompt = build_system_prompt()
    print(f"\nThe generated system prompt is {len(prompt.splitlines())} lines long; "
          "see repro.prompts.build_system_prompt() for the full text.")


if __name__ == "__main__":
    main()
