"""Reproduce the paper's Fig. 4: fixing an MZI_ps design with error feedback.

The first generated netlist connects a waveguide to a port the output MMI does
not have.  The evaluator classifies the failure as a "Wrong ports" error
(Table II), builds the feedback prompt, and the corrected second attempt
passes both the syntax and the functionality check.

Run with ``python examples/feedback_demo.py``.
"""

from __future__ import annotations

from repro.harness import figure4_text


def main() -> None:
    print(figure4_text(num_wavelengths=41))


if __name__ == "__main__":
    main()
