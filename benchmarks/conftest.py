"""Shared configuration for the benchmark harness.

Every paper table / figure has a corresponding ``bench_*`` module here.  The
expensive evaluation sweeps use ``benchmark.pedantic(..., rounds=1)`` so they
run exactly once and print the regenerated artefact; the micro-benchmarks
(solver scaling, prompt construction) use the default timing loop.
"""

from __future__ import annotations

import pytest

from _reporting import drain_artefacts

#: Reduced sweep settings used by the table benchmarks so the whole benchmark
#: suite completes in a few minutes.  Increase for a closer reproduction.
BENCH_SAMPLES_PER_PROBLEM = 3
BENCH_NUM_WAVELENGTHS = 21
BENCH_MAX_FEEDBACK = 3


@pytest.fixture(scope="session")
def bench_sweep_config():
    from repro.harness import SweepConfig

    return SweepConfig(
        samples_per_problem=BENCH_SAMPLES_PER_PROBLEM,
        max_feedback_iterations=BENCH_MAX_FEEDBACK,
        num_wavelengths=BENCH_NUM_WAVELENGTHS,
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Write every regenerated paper artefact (tables, figures) to the run log."""
    artefacts = drain_artefacts()
    if not artefacts:
        return
    terminalreporter.section("regenerated paper artefacts")
    for artefact in artefacts:
        for line in artefact.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
