"""Table I: benchmark description.

Regenerates the problem list of Table I and times how long it takes to build
and validate every golden design in the suite.
"""

from __future__ import annotations

from repro.bench import all_problems
from _reporting import emit
from repro.harness import table1_text
from repro.netlist import validate_netlist


def build_and_validate_suite():
    problems = all_problems()
    for problem in problems:
        validate_netlist(problem.golden_netlist(), port_spec=problem.port_spec)
    return len(problems)


def test_table1_suite_construction(benchmark):
    """Time golden-design construction + validation for all 24 problems."""
    count = benchmark(build_and_validate_suite)
    assert count == 24
    emit(table1_text())


def test_table1_golden_responses(benchmark):
    """Time the golden frequency-response computation of the full suite."""
    from repro.bench import GoldenStore

    def compute():
        store = GoldenStore(num_wavelengths=21)
        return len(store.precompute_all())

    count = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert count == 24
