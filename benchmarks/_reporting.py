"""Output helper for the benchmark harness.

pytest captures ``print`` output of passing tests, which would hide the
regenerated paper tables from the benchmark log.  ``emit`` therefore queues
each artefact, and the ``pytest_terminal_summary`` hook in
``benchmarks/conftest.py`` writes the queue to the terminal report at the end
of the run, so the tables always appear in
``pytest benchmarks/ --benchmark-only | tee bench_output.txt``.
"""

from __future__ import annotations

from typing import List

__all__ = ["emit", "drain_artefacts"]

_ARTEFACTS: List[str] = []


def emit(*blocks: object) -> None:
    """Queue one or more text blocks for the end-of-run artefact report."""
    for block in blocks:
        _ARTEFACTS.append(str(block))


def drain_artefacts() -> List[str]:
    """Return the queued artefacts and clear the queue."""
    artefacts = list(_ARTEFACTS)
    _ARTEFACTS.clear()
    return artefacts
