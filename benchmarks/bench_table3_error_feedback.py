"""Table III: syntax / functionality Pass@k without restrictions.

Runs the five simulated-designer profiles over the full 24-problem suite with
up to three error-feedback iterations (the 0, 1 and 3 EF columns are derived
from the same run) and prints the regenerated table.
"""

from __future__ import annotations

from _reporting import emit
from repro.harness import run_sweep, table3_text


def test_table3_error_feedback_sweep(benchmark, bench_sweep_config):
    """One full Table III sweep (all models, no restrictions)."""

    def sweep():
        return run_sweep(bench_sweep_config, restriction_settings=(False,))

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = table3_text(result)
    emit(table)

    # Shape checks corresponding to the paper's headline observations.
    for model in result.models():
        report = result.report(model, with_restrictions=False)
        assert report.pass_at_k(1, metric="syntax", max_feedback=3) >= report.pass_at_k(
            1, metric="syntax", max_feedback=0
        )
        assert report.pass_at_k(5, metric="syntax", max_feedback=0) >= report.pass_at_k(
            1, metric="syntax", max_feedback=0
        )
        assert report.pass_at_k(1, metric="functional", max_feedback=0) <= report.pass_at_k(
            1, metric="syntax", max_feedback=0
        )
