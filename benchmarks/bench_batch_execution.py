"""Benchmark: batched settings-axis execution versus the per-sample loop.

Times the Monte-Carlo / pass@k workload shape -- a stack of settings samples
over one topology -- two ways: the pre-batching pipeline (build each
sample's derived netlist, evaluate it) and one fused
:meth:`CircuitSolver.evaluate_batch` call over the same samples.  Fresh
draws are used for every round (real sample settings never repeat, so
per-variant instance-cache warmth would be fiction), while the compiled
plan stays warm, exactly as in a real sweep.  A separate benchmark times
the Monte-Carlo yield analysis of the ``variability`` pack end to end
through the engine's batch-aware cache keys.
``tools/bench_to_json.py`` runs the same batched-vs-looped comparison
standalone and records the trajectory in ``BENCH_solver.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.bench import get_problem
from repro.bench.problems.variability import (
    YieldSpec,
    monte_carlo_yield,
    ring_filter_nominal,
)
from repro.constants import default_wavelength_grid
from repro.engine import EngineConfig, ExecutionEngine
from repro.sim import CircuitSolver, apply_settings

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
from bench_to_json import _settings_perturbations  # noqa: E402

WAVELENGTHS = default_wavelength_grid(41)
SOLVER = CircuitSolver(instance_cache_entries=8192)

#: Settings samples per stack (a typical Monte-Carlo draw count).
BATCH_SAMPLES = 32

BATCH_PROBLEMS = ["mzi_ps", "clements_8x8", "benes_8x8", "spanke_8x8"]

DISPATCH_MODES = ["looped", "batched"]


def _fresh_salt() -> int:
    """A process-unique salt so every benchmark round uses fresh draws."""
    _fresh_salt.counter += 1  # type: ignore[attr-defined]
    return _fresh_salt.counter  # type: ignore[attr-defined]


_fresh_salt.counter = 0  # type: ignore[attr-defined]


@pytest.mark.parametrize("mode", DISPATCH_MODES)
@pytest.mark.parametrize("problem_name", BATCH_PROBLEMS)
def test_settings_batch_dispatch(benchmark, problem_name, mode):
    """Time one settings-sample stack looped versus fused."""
    netlist = get_problem(problem_name).golden_netlist()
    # Warm the structure work (plan cache) like a running sweep.
    SOLVER.evaluate_batch(
        netlist, _settings_perturbations(netlist, BATCH_SAMPLES, salt=_fresh_salt()), WAVELENGTHS
    )

    if mode == "looped":

        def run():
            batch = _settings_perturbations(netlist, BATCH_SAMPLES, salt=_fresh_salt())
            return [
                SOLVER.evaluate(apply_settings(netlist, overrides), WAVELENGTHS)
                for overrides in batch
            ]

    else:

        def run():
            batch = _settings_perturbations(netlist, BATCH_SAMPLES, salt=_fresh_salt())
            return SOLVER.evaluate_batch(netlist, batch, WAVELENGTHS)

    results = benchmark(run)
    assert len(results) == BATCH_SAMPLES
    benchmark.extra_info["batch_stats"] = SOLVER.batch_stats().as_dict()


def test_monte_carlo_yield_through_engine(benchmark):
    """Time a full Monte-Carlo yield analysis over the batched engine path."""
    engine = ExecutionEngine(EngineConfig(batch_size=16, cache_entries=0))
    netlist = ring_filter_nominal()
    spec = YieldSpec("O2", "I1", min_transmission=0.30, metric="max")

    def run():
        return monte_carlo_yield(
            netlist,
            spec,
            draws=BATCH_SAMPLES,
            seed=_fresh_salt(),
            wavelengths=WAVELENGTHS,
            engine=engine,
        )

    result = benchmark(run)
    assert result.draws == BATCH_SAMPLES
    benchmark.extra_info["engine_batch"] = engine.batch_stats().as_dict()
