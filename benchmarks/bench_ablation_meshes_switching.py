"""Ablation: cost of the design-generator substrates.

Times the Clements/Reck decomposition (optical-computing problems) and the
Benes permutation routing (optical-switch problems), the two non-trivial
algorithms behind the benchmark's golden designs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.meshes import clements_decomposition, random_unitary, reck_decomposition
from repro.switching import route_benes, route_spanke_benes


@pytest.mark.parametrize("size", [4, 8])
@pytest.mark.parametrize("scheme", ["clements", "reck"])
def test_mesh_decomposition_cost(benchmark, scheme, size):
    """Time decomposing a Haar-random unitary into an MZI mesh."""
    unitary = random_unitary(size, seed=size)
    decompose = clements_decomposition if scheme == "clements" else reck_decomposition
    decomposition = benchmark(decompose, unitary)
    assert np.allclose(decomposition.reconstruct(), unitary, atol=1e-6)


@pytest.mark.parametrize("size", [4, 8])
def test_benes_routing_cost(benchmark, size):
    """Time the looping algorithm on a fixed worst-ish-case permutation."""
    permutation = list(reversed(range(size)))
    states = benchmark(route_benes, size, permutation)
    assert states


@pytest.mark.parametrize("size", [8])
def test_spanke_benes_routing_cost(benchmark, size):
    """Time odd-even-transposition routing through the planar fabric."""
    permutation = list(reversed(range(size)))
    states = benchmark(route_spanke_benes, size, permutation)
    assert len(states) == size * (size - 1) // 2
