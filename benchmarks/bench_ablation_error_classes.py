"""Ablation: error-class breakdown and which restrictions pay off.

Not a table in the paper, but directly supports Section III-D (the error
classification loop): for one representative model profile it reports how
often each Table II failure class occurs with and without restrictions, and
checks that the restriction-addressed classes shrink.
"""

from __future__ import annotations

from _reporting import emit
from repro.harness import SweepConfig, error_breakdown_text, run_sweep
from repro.llm import get_profile
from repro.netlist import ErrorCategory


def test_error_class_breakdown(benchmark):
    """Run a single-profile sweep and print the per-category error histogram."""
    config = SweepConfig(samples_per_problem=3, max_feedback_iterations=1, num_wavelengths=21)

    def sweep():
        return run_sweep(config, profiles=[get_profile("GPT-4o")])

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(error_breakdown_text(result))

    report_without = result.report("GPT-4o", with_restrictions=False)
    report_with = result.report("GPT-4o", with_restrictions=True)
    syntax_errors_without = sum(
        count
        for category, count in report_without.error_breakdown().items()
        if category is not ErrorCategory.FUNCTIONAL
    )
    syntax_errors_with = sum(
        count
        for category, count in report_with.error_breakdown().items()
        if category is not ErrorCategory.FUNCTIONAL
    )
    assert syntax_errors_with < syntax_errors_without
