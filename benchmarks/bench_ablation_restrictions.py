"""Ablation: marginal contribution of individual Table II restrictions.

For the restriction-responsive GPT-4o-like profile, evaluates the benchmark
with no restrictions, with each of a few single restrictions, and with all of
them, printing the resulting Pass@1 table.  Supports the paper's Section III-D
claim that the accumulated restrictions are what unlock the Table IV gains.
"""

from __future__ import annotations

from _reporting import emit
from repro.harness import SweepConfig, restriction_ablation_text, run_restriction_ablation
from repro.llm import SimulatedDesigner
from repro.netlist import ErrorCategory

ABLATED_CATEGORIES = (
    ErrorCategory.EXTRA_CONTENT,
    ErrorCategory.WRONG_PORT,
    ErrorCategory.UNDEFINED_MODEL,
    ErrorCategory.DUPLICATE_CONNECTION,
)


def test_restriction_ablation(benchmark):
    """Run the single-restriction ablation on a reduced problem subset."""
    config = SweepConfig(
        samples_per_problem=3,
        max_feedback_iterations=0,
        num_wavelengths=21,
        problems=(
            "mzi_ps",
            "mzm",
            "direct_modulator",
            "optical_hybrid",
            "os_2x2",
            "nls",
            "wdm_demux",
            "benes_4x4",
        ),
    )

    def run():
        return run_restriction_ablation(
            SimulatedDesigner("GPT-4o"), config=config, categories=ABLATED_CATEGORIES
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(restriction_ablation_text(result))

    none_score = result.reports["no restrictions"].pass_at_k(1, metric="syntax", max_feedback=0)
    all_score = result.reports["all restrictions"].pass_at_k(1, metric="syntax", max_feedback=0)
    assert all_score >= none_score
