"""Table II: failure types and restrictions.

Regenerates the restriction table and times system-prompt construction with
and without the restriction section (the knob that distinguishes Table III
from Table IV).
"""

from __future__ import annotations

from _reporting import emit
from repro.harness import table2_text
from repro.prompts import PromptConfig, build_system_prompt


def test_table2_restrictions_table(benchmark):
    """Render Table II and time the restriction-augmented prompt build."""
    prompt = benchmark(
        build_system_prompt, config=PromptConfig(include_restrictions=True)
    )
    assert "Underscores are prohibited" in prompt
    emit(table2_text())


def test_system_prompt_without_restrictions(benchmark):
    """Baseline prompt construction (Table III setting)."""
    prompt = benchmark(build_system_prompt)
    assert "strictly follow these restrictions" not in prompt
