"""Table IV: syntax / functionality Pass@k with the Table II restrictions.

Same sweep as Table III but with the restrictions included in the system
prompt; prints the regenerated table and checks the paper's headline claim
that restrictions improve the aggregate scores.
"""

from __future__ import annotations

from _reporting import emit
from repro.harness import run_sweep, table4_text


def test_table4_restrictions_sweep(benchmark, bench_sweep_config):
    """One full Table IV sweep (all models, with restrictions)."""

    def sweep():
        return run_sweep(bench_sweep_config)  # both settings, for the comparison below

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(table4_text(result))

    # Restrictions raise the average zero-feedback syntax score (Section IV-B2).
    without = [
        result.report(m, with_restrictions=False).pass_at_k(1, metric="syntax", max_feedback=0)
        for m in result.models()
    ]
    with_ = [
        result.report(m, with_restrictions=True).pass_at_k(1, metric="syntax", max_feedback=0)
        for m in result.models()
    ]
    assert sum(with_) / len(with_) > sum(without) / len(without)
