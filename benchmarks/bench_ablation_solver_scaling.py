"""Ablation: circuit-solver cost versus design size and backend.

The paper's evaluation hinges on simulating every candidate netlist; this
ablation times both solver backends on the benchmark's smallest and largest
designs (from the 4-instance MZI up to the 112-instance 8x8 Spanke fabric)
so the cost of the syntax/functionality check -- and the payoff of the
structure-aware ``cascade`` backend over the dense ``O(W * P^3)`` solve --
is visible.  ``tools/bench_to_json.py`` runs the same comparison standalone
and records the trajectory in ``BENCH_solver.json``.
"""

from __future__ import annotations

import pytest

from repro.bench import get_problem
from repro.constants import default_wavelength_grid
from repro.sim import CircuitSolver

WAVELENGTHS = default_wavelength_grid(41)
SOLVER = CircuitSolver()

BACKENDS = ["dense", "cascade"]

SCALING_PROBLEMS = [
    "mzi_ps",
    "optical_hybrid",
    "clements_4x4",
    "clements_8x8",
    "benes_8x8",
    "crossbar_8x8",
    "spanke_8x8",
]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("problem_name", SCALING_PROBLEMS)
def test_solver_scaling(benchmark, problem_name, backend):
    """Time one full-band simulation of a golden design per backend."""
    problem = get_problem(problem_name)
    netlist = problem.golden_netlist()

    result = benchmark(SOLVER.evaluate, netlist, WAVELENGTHS, backend=backend)
    assert result.num_wavelengths == WAVELENGTHS.size


@pytest.mark.parametrize("backend", BACKENDS)
def test_solver_wavelength_scaling(benchmark, backend):
    """Time the largest fabric on the full 161-point evaluation grid."""
    netlist = get_problem("benes_8x8").golden_netlist()
    grid = default_wavelength_grid()
    # Warm the per-device instance cache on this grid so both backends are
    # timed on pure composition cost (the cache key includes the grid).
    SOLVER.evaluate(netlist, grid, backend=backend)

    result = benchmark.pedantic(
        SOLVER.evaluate, args=(netlist, grid), kwargs={"backend": backend}, rounds=1, iterations=1
    )
    assert result.num_wavelengths == grid.size
