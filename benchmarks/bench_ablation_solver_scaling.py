"""Ablation: circuit-solver cost versus design size.

The paper's evaluation hinges on simulating every candidate netlist; this
ablation times the solver on the benchmark's smallest and largest designs
(from the 4-instance MZI up to the 112-instance 8x8 Spanke fabric) so the
cost of the syntax/functionality check is visible.
"""

from __future__ import annotations

import pytest

from repro.bench import get_problem
from repro.constants import default_wavelength_grid
from repro.sim import CircuitSolver

WAVELENGTHS = default_wavelength_grid(41)
SOLVER = CircuitSolver()

SCALING_PROBLEMS = [
    "mzi_ps",
    "optical_hybrid",
    "clements_4x4",
    "clements_8x8",
    "benes_8x8",
    "crossbar_8x8",
    "spanke_8x8",
]


@pytest.mark.parametrize("problem_name", SCALING_PROBLEMS)
def test_solver_scaling(benchmark, problem_name):
    """Time one full-band simulation of a golden design."""
    problem = get_problem(problem_name)
    netlist = problem.golden_netlist()

    result = benchmark(SOLVER.evaluate, netlist, WAVELENGTHS)
    assert result.num_wavelengths == WAVELENGTHS.size


def test_solver_wavelength_scaling(benchmark):
    """Time the largest fabric on the full 161-point evaluation grid."""
    netlist = get_problem("benes_8x8").golden_netlist()
    grid = default_wavelength_grid()

    result = benchmark.pedantic(SOLVER.evaluate, args=(netlist, grid), rounds=1, iterations=1)
    assert result.num_wavelengths == grid.size
