"""Ablation: circuit-solver cost versus design size, backend and plan state.

The paper's evaluation hinges on simulating every candidate netlist; this
ablation times both solver backends on the benchmark's smallest and largest
designs (from the 4-instance MZI up to the 112-instance 8x8 Spanke fabric),
under both a **cold** compiled-plan cache (every evaluation redoes assembly,
condensation and schedule construction -- the PR 3 architecture) and a
**warm** one (the repeated-evaluation hot path: structurally identical
netlists skip straight to the level-batched executor).  A separate benchmark
isolates the compile step itself, so the compile-versus-execute split is
visible.  ``tools/bench_to_json.py`` runs the same comparison standalone and
records the trajectory in ``BENCH_solver.json``.
"""

from __future__ import annotations

import pytest

from repro.bench import get_problem
from repro.constants import default_wavelength_grid
from repro.sim import CircuitSolver

WAVELENGTHS = default_wavelength_grid(41)
SOLVER = CircuitSolver()

BACKENDS = ["dense", "cascade"]

#: Plan-cache states: ``warm`` serves the compiled plan from the cache (the
#: repeated-evaluation hot path), ``cold`` clears it before every run.
PLAN_STATES = ["warm", "cold"]

SCALING_PROBLEMS = [
    "mzi_ps",
    "optical_hybrid",
    "clements_4x4",
    "clements_8x8",
    "benes_8x8",
    "crossbar_8x8",
    "spanke_8x8",
]

#: Problems used for the compile-cost benchmark (the largest fabrics, where
#: the compile/execute split matters most).
COMPILE_PROBLEMS = ["clements_8x8", "spanke_8x8"]


@pytest.mark.parametrize("plan", PLAN_STATES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("problem_name", SCALING_PROBLEMS)
def test_solver_scaling(benchmark, problem_name, backend, plan):
    """Time one full-band simulation per backend and plan-cache state."""
    problem = get_problem(problem_name)
    netlist = problem.golden_netlist()
    # Warm the per-device instance cache (and, for the warm case, the plan
    # cache) so timings isolate composition cost.
    SOLVER.evaluate(netlist, WAVELENGTHS, backend=backend)

    if plan == "cold":

        def run():
            SOLVER.clear_plan_cache()
            return SOLVER.evaluate(netlist, WAVELENGTHS, backend=backend)

    else:

        def run():
            return SOLVER.evaluate(netlist, WAVELENGTHS, backend=backend)

    result = benchmark(run)
    assert result.num_wavelengths == WAVELENGTHS.size
    benchmark.extra_info["plan_cache"] = SOLVER.plan_cache_stats().as_dict()


@pytest.mark.parametrize("problem_name", COMPILE_PROBLEMS)
def test_plan_compile_cost(benchmark, problem_name):
    """Time one cold compile: assembly + condensation + level schedules."""
    netlist = get_problem(problem_name).golden_netlist()
    SOLVER.evaluate(netlist, WAVELENGTHS)  # instance cache warm

    def run():
        SOLVER.clear_plan_cache()
        return SOLVER.compile(netlist, WAVELENGTHS)

    compiled = benchmark(run)
    assert compiled.num_ports > 0
    benchmark.extra_info["num_ports"] = compiled.num_ports
    benchmark.extra_info["num_levels"] = compiled.num_levels
    benchmark.extra_info["column_groups"] = compiled.num_column_groups


@pytest.mark.parametrize("backend", BACKENDS)
def test_solver_wavelength_scaling(benchmark, backend):
    """Time the largest fabric on the full 161-point evaluation grid."""
    netlist = get_problem("benes_8x8").golden_netlist()
    grid = default_wavelength_grid()
    # Warm the per-device instance cache on this grid so both backends are
    # timed on pure composition cost (the cache key includes the grid).
    SOLVER.evaluate(netlist, grid, backend=backend)

    result = benchmark.pedantic(
        SOLVER.evaluate, args=(netlist, grid), kwargs={"backend": backend}, rounds=1, iterations=1
    )
    assert result.num_wavelengths == grid.size
