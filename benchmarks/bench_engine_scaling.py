"""Benchmark: sequential vs parallel vs cached sweep throughput.

The execution engine (``repro.engine``) flattens the evaluation's nested
loops into independent work units, runs them on a thread pool, and serves
repeated simulations from a content-addressed cache.  This benchmark times
the same simulated-designer sweep under four engine configurations:

* ``seed sequential``  -- one worker, every cache disabled (the pre-engine
  from-scratch behaviour),
* ``cached sequential`` -- one worker, caches enabled,
* ``cached parallel``   -- multi-worker, caches enabled, cold start,
* ``cached warm``       -- multi-worker rerun sharing the previous engine.

Every variant must produce a byte-identical result set; the warm cached run
is asserted to beat the seed sequential run by at least 2x.
"""

from __future__ import annotations

import os
import time

from _reporting import emit

from repro.engine import EngineConfig, ExecutionEngine
from repro.harness import SweepConfig, run_sweep
from repro.harness.formatting import render_table
from repro.sim import CircuitSolver

#: Reduced sweep settings (mirrors the table benchmarks' reduced defaults).
SWEEP_KWARGS = dict(
    samples_per_problem=3,
    max_feedback_iterations=3,
    num_wavelengths=21,
)

#: At least 2 so the thread-pool path is exercised even on one-core runners.
PARALLEL_WORKERS = min(4, max(os.cpu_count() or 1, 2))


def _timed_sweep(engine: ExecutionEngine, config: SweepConfig):
    start = time.perf_counter()
    result = run_sweep(config, engine=engine)
    return result, time.perf_counter() - start


def test_engine_scaling(benchmark):
    """Time the sweep under the four engine configurations and compare."""
    config = SweepConfig(**SWEEP_KWARGS)

    seed_engine = ExecutionEngine(
        EngineConfig(workers=1, cache_entries=0),
        solver=CircuitSolver(instance_cache_entries=0),
    )
    sequential, t_seed = _timed_sweep(seed_engine, config)

    cached_seq, t_cached_seq = _timed_sweep(ExecutionEngine(EngineConfig(workers=1)), config)

    parallel_engine = ExecutionEngine(EngineConfig(workers=PARALLEL_WORKERS))
    parallel, t_parallel = _timed_sweep(parallel_engine, config)

    # Warm rerun: same engine, so the content-addressed cache is already hot.
    warm, t_warm = benchmark.pedantic(
        _timed_sweep, args=(parallel_engine, config), rounds=1, iterations=1
    )

    for variant in (cached_seq, parallel, warm):
        assert variant.to_dict() == sequential.to_dict()

    def row(label, seconds):
        return [label, f"{seconds:.2f} s", f"{t_seed / seconds:.2f}x"]

    stats = parallel_engine.stats()
    emit(
        render_table(
            ["Engine configuration", "Sweep wall-clock", "Speedup vs seed"],
            [
                row("seed sequential (no caches)", t_seed),
                row("cached sequential", t_cached_seq),
                row(f"cached parallel ({PARALLEL_WORKERS} workers, cold)", t_parallel),
                row(f"cached parallel ({PARALLEL_WORKERS} workers, warm)", t_warm),
            ],
            title="Execution-engine sweep scaling (simulated-designer suite)",
        ),
        f"simulation cache: {stats['simulation_cache']}  "
        f"hit rate {stats['simulation_hit_rate']:.1%}",
        f"instance cache:   {stats['instance_cache']}  "
        f"hit rate {stats['instance_hit_rate']:.1%}",
    )

    assert t_seed / t_warm >= 2.0, (
        f"cached+parallel sweep only {t_seed / t_warm:.2f}x faster than the "
        f"seed sequential sweep ({t_warm:.2f} s vs {t_seed:.2f} s)"
    )
