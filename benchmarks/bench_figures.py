"""Figures 1-4: framework flow, problem description, system prompt, feedback trace.

* Fig. 1 is the generation/evaluation/feedback loop itself; it is exercised by
  timing one full feedback trajectory of a simulated designer.
* Fig. 2 and Fig. 3 are prompt artefacts regenerated verbatim.
* Fig. 4 is the MZI_ps correction trace: initial "Wrong ports" error, one
  feedback round, pass.
"""

from __future__ import annotations

from _reporting import emit
from repro.bench import GoldenStore, get_problem
from repro.evalkit import EvaluationConfig, Evaluator
from repro.harness import figure2_text, figure3_text, figure4_text, figure4_trace
from repro.llm import SimulatedDesigner


def test_fig1_feedback_loop_trajectory(benchmark):
    """Time one complete Fig. 1 trajectory (generate -> evaluate -> feedback)."""
    problem = get_problem("mzi_ps")
    golden_store = GoldenStore(num_wavelengths=21)
    evaluator = Evaluator(
        EvaluationConfig(max_feedback_iterations=3, num_wavelengths=21),
        golden_store=golden_store,
    )
    designer = SimulatedDesigner("Claude 3.5 Sonnet")

    def run_trajectory():
        return evaluator.run_sample(designer, problem, sample_index=1)

    sample = benchmark(run_trajectory)
    assert sample.attempts


def test_fig2_problem_description(benchmark):
    """Regenerate the Fig. 2 problem description."""
    text = benchmark(figure2_text)
    assert "Mach-Zehnder" in text
    emit(text)


def test_fig3_system_prompt(benchmark):
    """Regenerate the Fig. 3 system prompt template."""
    text = benchmark(figure3_text)
    assert "built-in devices" in text


def test_fig4_feedback_trace(benchmark):
    """Regenerate the Fig. 4 correction trace (wrong port -> feedback -> pass)."""
    steps = benchmark.pedantic(figure4_trace, kwargs={"num_wavelengths": 21}, rounds=1, iterations=1)
    assert steps[-1].verdict == "Evaluation: PASS"
    emit(figure4_text(num_wavelengths=21))
