#!/usr/bin/env python
"""Docstring-coverage checker (an offline ``interrogate`` substitute).

Walks the given files/directories, counts docstring-carrying definitions
(modules, classes, functions and methods -- nested definitions included) via
the ``ast`` module, and fails when total coverage is below ``--fail-under``.

Used by the CI docs job::

    python tools/check_docstrings.py --fail-under 90 src/repro/bench src/repro/harness

Exit status: 0 when coverage >= threshold, 1 otherwise, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, List, Tuple


def iter_python_files(targets: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {target}")
    return files


def inspect_file(path: Path) -> Tuple[int, int, List[str]]:
    """Count (documented, total) definitions in one file.

    Returns ``(documented, total, missing)`` where ``missing`` lists the
    qualified names of definitions without a docstring.  Synthetic wrappers
    (``lambda``) and overload stubs are not definitions in the AST sense, so
    only modules, classes and (async) functions are counted.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    documented = 0
    total = 0
    missing: List[str] = []

    def visit(node: ast.AST, qualname: str) -> None:
        nonlocal documented, total
        countable = isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        )
        if countable:
            total += 1
            if ast.get_docstring(node) is not None:
                documented += 1
            else:
                missing.append(qualname or "<module>")
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                child_name = f"{qualname}.{child.name}" if qualname else child.name
                visit(child, child_name)

    visit(tree, "")
    return documented, total, missing


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("targets", nargs="+", help="files or directories to check")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=90.0,
        help="minimum acceptable coverage percentage (default: 90)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="list every undocumented definition"
    )
    args = parser.parse_args(argv)

    try:
        files = iter_python_files(args.targets)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not files:
        print("error: no Python files found", file=sys.stderr)
        return 2

    grand_documented = 0
    grand_total = 0
    for path in files:
        documented, total, missing = inspect_file(path)
        grand_documented += documented
        grand_total += total
        coverage = 100.0 * documented / total if total else 100.0
        print(f"{coverage:6.1f}%  {documented:>3}/{total:<3}  {path}")
        if args.verbose:
            for name in missing:
                print(f"         missing: {path}:{name}")

    overall = 100.0 * grand_documented / grand_total if grand_total else 100.0
    verdict = "PASSED" if overall >= args.fail_under else "FAILED"
    print(
        f"\ntotal docstring coverage: {overall:.1f}% "
        f"({grand_documented}/{grand_total} definitions), "
        f"required {args.fail_under:.1f}% -- {verdict}"
    )
    return 0 if overall >= args.fail_under else 1


if __name__ == "__main__":
    sys.exit(main())
