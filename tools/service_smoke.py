"""End-to-end smoke of the evaluation service (the CI `service` gate).

Starts an in-process daemon on a temp database, then drives the whole
acceptance path over the real socket protocol:

1. >= 4 concurrent sweep jobs submitted from concurrent threads; every
   job must finish ``done`` and every report must land in SQLite.
2. A seed-varied job re-using the first job's compiled plans (plan-cache
   hits > 0 in its per-job engine-stats delta) -- the one-shot regression.
3. An identical re-submission that is fully warm: simulation-cache hits
   with zero misses and zero plan compiles.
4. A self-diff of a stored run through the ``diff`` op: must be empty and
   must not trip the regression gate.

Exits non-zero with a message on the first violated invariant.

Usage::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import EvalService, JobSpec  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.daemon import ServiceDaemon  # noqa: E402

#: Small but engine-exercising spec (several structure-sharing candidates).
BASE = dict(
    models=("GPT-4o",),
    restrictions=(False,),
    samples_per_problem=4,
    max_feedback_iterations=2,
    num_wavelengths=5,
)


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as workdir:
        db = Path(workdir) / "results.db"
        with EvalService(db, job_workers=4) as service:
            with ServiceDaemon(service) as daemon:
                client = ServiceClient(*daemon.address)
                if client.ping()["ok"] is not True:
                    fail("ping did not answer ok")

                # -- 1. concurrent submissions ------------------------------
                ids: list = []
                errors: list = []
                lock = threading.Lock()

                # The concurrent batch runs a *different* problem than the
                # warm-cache steps below, so those start with a clean
                # simulation-content space for their problem.
                def submit(seed: int) -> None:
                    try:
                        job_id = client.submit(
                            JobSpec(**BASE, problems=("mzm",), base_seed=seed)
                        )
                        with lock:
                            ids.append(job_id)
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)

                threads = [
                    threading.Thread(target=submit, args=(seed,)) for seed in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                if errors or len(ids) != 4:
                    fail(f"concurrent submission broke: {errors!r}, ids={ids!r}")
                jobs = [client.poll(job_id, timeout=600.0) for job_id in ids]
                for job in jobs:
                    if job["state"] != "done":
                        fail(f"job {job['job_id']} ended {job['state']}: {job['error']}")
                    service.store.load_run(job["run_id"])  # raises when missing
                print(f"ok: {len(jobs)} concurrent jobs done and persisted")

                # -- 2. warm plan cache on a seed-varied job ----------------
                # Job 1 on mzi_ps compiles its plans; job 2 differs only in
                # seed (same topologies, new settings), so a service that
                # kept the engine warm must serve plan-cache hits.
                mzi = dict(BASE, problems=("mzi_ps",))
                first_id = client.submit(JobSpec(**mzi, base_seed=0))
                first = client.poll(first_id, timeout=600.0)
                if first["state"] != "done":
                    fail(f"mzi_ps baseline job ended {first['state']}")
                warm_id = client.submit(JobSpec(**mzi, base_seed=7))
                warm = client.poll(warm_id, timeout=600.0)
                plan = warm["engine_stats"]["plan_cache"]
                if not plan["hits"] > 0:
                    fail(f"seed-varied job saw no plan-cache hits: {plan!r}")
                if plan["misses"] != 0:
                    fail(f"seed-varied job recompiled plans: {plan!r}")
                print(f"ok: seed-varied job warm ({plan['hits']} plan-cache hits)")

                # -- 3. identical re-submission is fully warm ---------------
                rerun_id = client.submit(JobSpec(**mzi, base_seed=0))
                rerun = client.poll(rerun_id, timeout=600.0)
                delta = rerun["engine_stats"]
                sim = delta["simulation_cache"]
                if not (sim["hits"] > 0 and sim["misses"] == 0):
                    fail(f"identical re-submission re-simulated: {sim!r}")
                if delta["plan_cache"]["misses"] != 0:
                    fail(f"identical re-submission recompiled plans: {delta!r}")
                if rerun["run_id"] != first["run_id"]:
                    fail("identical re-submission did not dedupe to the same run")
                print(f"ok: identical re-submission fully warm ({sim['hits']} sim hits)")

                # -- 4. self-diff is empty ----------------------------------
                diff = client.diff(rerun["run_id"], rerun["run_id"])
                if diff["report"]["is_empty"] is not True:
                    fail(f"self-diff is not empty: {diff['report']!r}")
                if diff["report"]["is_regression"] is not False:
                    fail("self-diff tripped the regression gate")
                print("ok: self-diff empty, regression gate clean")

                counts = service.store.counts()
                print(
                    f"ok: store has {counts['runs']} runs, {counts['reports']} reports, "
                    f"{counts['trajectories']} trajectory rows, {counts['jobs']} jobs"
                )
    print("service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
