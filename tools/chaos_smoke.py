"""Deterministic chaos smoke of the fault-injection seams (the CI `chaos` gate).

Runs one small sweep configuration through every robustness path and holds
the results to the golden, fault-free report:

1. Golden: a thread-mode run with no plan installed -- the reference bytes.
2. Kill + resume: a subprocess under ``REPRO_FAULTS=sweep.unit=kill+3`` is
   hard-killed (``os._exit``) after journaling exactly 3 trajectories; a
   resumed run computes only the remaining units and must reproduce the
   golden report byte for byte.
3. Torn writes: ``cache.disk_write=corrupt`` poisons on-disk ``.npz``
   entries; the next run must quarantine them (``*.corrupt`` files, the
   ``disk_corrupt`` counter) and still emit the golden bytes.
4. Transient I/O: ``cache.disk_read`` raise + delay faults must be absorbed
   by the bounded retry policy (``disk_retries`` counter) without touching
   the report.
5. Worker death: a process-mode subprocess under
   ``REPRO_FAULTS=procpool.unit=kill+2`` loses workers mid-sweep; the
   crash-containment / single-unit retry path must recover every unit
   (``unit_crashes`` / ``unit_retries`` counters) and emit the golden bytes.

Every fault decision derives from the fixed plan seed, so this smoke is
exactly reproducible run to run.  Exits non-zero on the first violation.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, SRC)

from repro.engine.engine import ExecutionEngine  # noqa: E402
from repro.faults import FaultRule, inject  # noqa: E402
from repro.harness.runner import SweepConfig, run_model  # noqa: E402
from repro.llm.simulated import SimulatedDesigner  # noqa: E402

#: The shared scenario: small, fast, and exercising two problems so shards,
#: journals and caches all hold more than one unit.
BASE = dict(
    samples_per_problem=3,
    max_feedback_iterations=2,
    num_wavelengths=5,
    problems=("mzi_ps", "nls"),
)

#: Exit code of ``kill``-kind injections (see :class:`repro.faults.FaultRule`).
KILL_EXIT = 73

_KILL_CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.harness.runner import SweepConfig, run_model
from repro.llm.simulated import SimulatedDesigner

config = SweepConfig(
    samples_per_problem=3, max_feedback_iterations=2, num_wavelengths=5,
    problems=("mzi_ps", "nls"), journal_dir={journal_dir!r}, resume=True,
)
run_model(SimulatedDesigner("GPT-4o"), include_restrictions=False, config=config)
print("UNEXPECTED: the injected kill never fired")
"""

_PROCPOOL_CHILD = """
import json
import sys
sys.path.insert(0, {src!r})
from repro.evalkit.outcome import EvalReport
from repro.harness import runner
from repro.llm.simulated import SimulatedDesigner

config = runner.SweepConfig(
    samples_per_problem=3, max_feedback_iterations=2, num_wavelengths=5,
    problems=("mzi_ps", "nls"), execution_mode="process", processes=1,
)
client = SimulatedDesigner("GPT-4o")
model = getattr(client, "name", type(client).__name__)
problems = config.select_problems()
units = [
    (False, 0, problem_index, sample_index)
    for problem_index in range(len(problems))
    for sample_index in range(config.samples_per_problem)
]
samples, stats = runner._map_units_process(
    config, runner._client_specs([client]), (False,), units, problems,
    model_names=(model,),
)
packs = {{problem.pack for problem in problems}}
report = EvalReport(
    model=model, with_restrictions=False,
    samples_per_problem=config.samples_per_problem,
    max_feedback_iterations=config.max_feedback_iterations,
    pack=packs.pop() if len(packs) == 1 else "mixed",
)
for sample in samples:
    report.add(sample)
print(json.dumps(
    {{"report": report.to_dict(), "procpool": stats.get("procpool", {{}})}},
    sort_keys=True,
))
"""


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def canonical(report) -> str:
    """The byte-identity surface: sorted-key JSON of the report."""
    return json.dumps(report.to_dict(), sort_keys=True)


def run_child(source: str, faults: str) -> subprocess.CompletedProcess:
    """One subprocess under a fixed ``REPRO_FAULTS`` plan."""
    env = dict(os.environ)
    env["REPRO_FAULTS"] = faults
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-c", source], env=env, capture_output=True, text=True
    )


def sweep_report(config: SweepConfig, engine=None):
    """One fresh-client evaluation of the shared scenario."""
    return run_model(
        SimulatedDesigner("GPT-4o"), include_restrictions=False,
        config=config, engine=engine,
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as workdir:
        work = Path(workdir)

        # -- 1. golden reference ---------------------------------------
        golden = canonical(sweep_report(SweepConfig(**BASE)))
        print("ok: golden report computed")

        # -- 2. kill after 3 journaled units, then resume --------------
        journal_dir = work / "journals"
        child = run_child(
            _KILL_CHILD.format(src=SRC, journal_dir=str(journal_dir)),
            faults="seed=7;sweep.unit=kill+3",
        )
        if child.returncode != KILL_EXIT:
            fail(
                f"kill child exited {child.returncode}, wanted {KILL_EXIT}\n"
                f"{child.stdout}{child.stderr}"
            )
        journals = list(journal_dir.glob("sweep-*.jsonl"))
        if len(journals) != 1:
            fail(f"expected one journal after the kill, found {journals!r}")
        lines = journals[0].read_text(encoding="utf-8").splitlines()
        if len(lines) != 3:
            fail(f"journal holds {len(lines)} units after kill+3, wanted 3")
        resumed = canonical(
            sweep_report(
                SweepConfig(**BASE, journal_dir=str(journal_dir), resume=True)
            )
        )
        if resumed != golden:
            fail("resumed report is not byte-identical to the golden run")
        total = len(BASE["problems"]) * BASE["samples_per_problem"]
        lines = journals[0].read_text(encoding="utf-8").splitlines()
        if len(lines) != total:
            fail(f"journal holds {len(lines)} units after resume, wanted {total}")
        print(
            "ok: kill at unit 3 -> resume computed the remaining "
            f"{total - 3}, report byte-identical"
        )

        # -- 3. torn disk writes are quarantined -----------------------
        cache_dir = work / "simcache"
        cached = SweepConfig(**BASE, cache_dir=str(cache_dir))
        with inject(
            FaultRule("cache.disk_write", kind="corrupt", max_triggers=2), seed=7
        ):
            torn = canonical(
                sweep_report(cached, engine=ExecutionEngine(cached.engine_config()))
            )
        if torn != golden:
            fail("run under torn-write injection diverged from the golden report")
        reader = ExecutionEngine(cached.engine_config())
        if canonical(sweep_report(cached, engine=reader)) != golden:
            fail("run over a corrupted cache diverged from the golden report")
        corrupt = reader.stats()["simulation_cache"]["disk_corrupt"]
        quarantined = list(cache_dir.rglob("*.corrupt"))
        if corrupt < 1 or not quarantined:
            fail(
                f"corrupted entries were not quarantined "
                f"(disk_corrupt={corrupt}, files={quarantined!r})"
            )
        print(
            f"ok: {corrupt} torn entries quarantined "
            f"({len(quarantined)} *.corrupt files), report byte-identical"
        )

        # -- 4. transient disk reads are retried -----------------------
        with inject(
            FaultRule("cache.disk_read", kind="raise", max_triggers=3),
            FaultRule("cache.disk_read", kind="delay", delay=0.01, max_triggers=5),
            seed=7,
        ) as plan:
            flaky = ExecutionEngine(cached.engine_config())
            if canonical(sweep_report(cached, engine=flaky)) != golden:
                fail("run under flaky-read injection diverged from the golden report")
            triggers = plan.stats()["cache.disk_read"]["triggers"]
        retries = flaky.stats()["simulation_cache"]["disk_retries"]
        if triggers < 3 or retries < 1:
            fail(f"flaky reads did not exercise retry (triggers={triggers}, retries={retries})")
        print(
            f"ok: {triggers} injected read faults absorbed "
            f"({retries} disk retries), report byte-identical"
        )

        # -- 5. process-mode worker death is contained -----------------
        child = run_child(
            _PROCPOOL_CHILD.format(src=SRC), faults="seed=7;procpool.unit=kill+2"
        )
        if child.returncode != 0:
            fail(
                f"procpool child exited {child.returncode}\n"
                f"{child.stdout}{child.stderr}"
            )
        payload = json.loads(child.stdout.strip().splitlines()[-1])
        if json.dumps(payload["report"], sort_keys=True) != golden:
            fail("process-mode run under worker kills diverged from the golden report")
        counters = payload["procpool"]
        if counters.get("unit_crashes", 0) < 1:
            fail(f"worker kills were not observed: {counters!r}")
        print(
            "ok: worker deaths contained "
            f"(crashes={counters['unit_crashes']}, retries={counters['unit_retries']}), "
            "report byte-identical"
        )

    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
