#!/usr/bin/env python
"""Time the circuit-solver backends and write a JSON benchmark trajectory.

Runs the solver-scaling problems (the same set as
``benchmarks/bench_ablation_solver_scaling.py``) through both the ``dense``
and the ``cascade`` backend, records best-of-N wall times, the measured
speedup, the cascade plan's feedback structure and the max absolute
dense/cascade deviation, and writes everything to a JSON file
(``BENCH_solver.json`` at the repository root by default) so the perf
trajectory is versioned alongside the code.

Examples
--------
Full committed run (161-point grid, the paper's evaluation band)::

    python tools/bench_to_json.py

CI perf smoke (small grid, subset, non-zero exit if cascade regresses)::

    python tools/bench_to_json.py --wavelengths 41 --repeats 1 \\
        --problems mzi_ps benes_8x8 spanke_8x8 \\
        --output /tmp/bench_solver.json --assert-speedup spanke_8x8=1.0
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402  (after the path insert, like the other tools)

from repro.bench import get_problem  # noqa: E402
from repro.constants import default_wavelength_grid  # noqa: E402
from repro.sim import CircuitSolver  # noqa: E402

#: Problems timed by default (mirrors benchmarks/bench_ablation_solver_scaling.py).
DEFAULT_PROBLEMS = (
    "mzi_ps",
    "optical_hybrid",
    "clements_4x4",
    "clements_8x8",
    "benes_8x8",
    "crossbar_8x8",
    "spanke_8x8",
)

BACKENDS = ("dense", "cascade")


def _time_backend(
    solver: CircuitSolver, netlist, wavelengths, backend: str, repeats: int
) -> Dict[str, object]:
    """Best-of-``repeats`` wall time of one backend on one netlist."""
    runs: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        solver.evaluate(netlist, wavelengths, backend=backend)
        runs.append(time.perf_counter() - start)
    return {"best_s": min(runs), "mean_s": sum(runs) / len(runs), "runs_s": runs}


def run_benchmark(
    problems: Sequence[str], num_wavelengths: int, repeats: int
) -> Dict[str, object]:
    """Time every backend on every problem and assemble the JSON payload."""
    wavelengths = default_wavelength_grid(num_wavelengths)
    solver = CircuitSolver()
    results: List[Dict[str, object]] = []
    for name in problems:
        netlist = get_problem(name).golden_netlist()
        plan = solver.cascade_plan(netlist, wavelengths)
        # Warm the per-device instance cache so both backends are timed on
        # pure composition cost, not on device-model evaluation.
        reference = solver.evaluate(netlist, wavelengths, backend="dense")
        cascade_result = solver.evaluate(netlist, wavelengths, backend="cascade")
        max_abs_diff = float(np.max(np.abs(reference.data - cascade_result.data)))

        timings = {
            backend: _time_backend(solver, netlist, wavelengths, backend, repeats)
            for backend in BACKENDS
        }
        speedup = timings["dense"]["best_s"] / timings["cascade"]["best_s"]
        entry = {
            "problem": name,
            "num_instances": netlist.num_instances(),
            "num_ports": plan.num_ports,
            "num_feedback_clusters": len(plan.feedback),
            "largest_feedback_cluster": plan.largest_feedback_cluster,
            "max_abs_diff": max_abs_diff,
            "backends": timings,
            "speedup_cascade_over_dense": speedup,
        }
        results.append(entry)
        print(
            f"{name}: dense={timings['dense']['best_s']:.4f}s "
            f"cascade={timings['cascade']['best_s']:.4f}s "
            f"speedup={speedup:.1f}x diff={max_abs_diff:.1e}",
            file=sys.stderr,
        )
    return {
        "benchmark": "solver-backends",
        "generated_by": "tools/bench_to_json.py",
        "config": {
            "num_wavelengths": num_wavelengths,
            "repeats": repeats,
            "timing": "best of repeats, per-device instance cache warm",
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }


def _parse_assertions(raw: Optional[Sequence[str]]) -> Dict[str, float]:
    """Parse repeated ``--assert-speedup PROBLEM=FACTOR`` flags."""
    assertions: Dict[str, float] = {}
    for item in raw or ():
        name, separator, factor = item.partition("=")
        if not separator or not name:
            raise SystemExit(f"--assert-speedup must look like PROBLEM=FACTOR, got {item!r}")
        try:
            assertions[name] = float(factor)
        except ValueError:
            raise SystemExit(
                f"--assert-speedup factor must be a number, got {factor!r} in {item!r}"
            ) from None
    return assertions


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python tools/bench_to_json.py``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_solver.json",
        help="JSON file to write (default: BENCH_solver.json at the repo root)",
    )
    parser.add_argument(
        "--problems",
        nargs="*",
        default=list(DEFAULT_PROBLEMS),
        help="problem names to time (default: the solver-scaling set)",
    )
    parser.add_argument(
        "--wavelengths",
        type=int,
        default=161,
        help="wavelength-grid points (default: the 161-point evaluation grid)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions per backend (best-of)"
    )
    parser.add_argument(
        "--assert-speedup",
        action="append",
        default=None,
        metavar="PROBLEM=FACTOR",
        help="exit non-zero unless cascade is at least FACTOR times faster "
        "than dense on PROBLEM (repeatable; 1.0 = 'no slower')",
    )
    args = parser.parse_args(argv)
    # Validate flags that would otherwise only fail after minutes of timing.
    assertions = _parse_assertions(args.assert_speedup)
    if args.repeats < 1:
        raise SystemExit(f"--repeats must be >= 1, got {args.repeats}")

    payload = run_benchmark(args.problems, args.wavelengths, args.repeats)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}", file=sys.stderr)

    failures = []
    by_problem = {entry["problem"]: entry for entry in payload["results"]}
    for name, factor in assertions.items():
        entry = by_problem.get(name)
        if entry is None:
            failures.append(f"{name}: not benchmarked")
            continue
        speedup = entry["speedup_cascade_over_dense"]
        if speedup < factor:
            failures.append(f"{name}: cascade speedup {speedup:.2f}x < required {factor:.2f}x")
    if failures:
        print("speedup assertions FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
