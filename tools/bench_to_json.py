#!/usr/bin/env python
"""Time the circuit-solver backends and append to a JSON benchmark trajectory.

Runs the solver-scaling problems (the same set as
``benchmarks/bench_ablation_solver_scaling.py``) through

* the ``dense`` backend,
* the retained **PR 3 per-port cascade reference**
  (:func:`repro.sim.cascade.cascade_solve`, which recomputes masks,
  adjacency and plan on every call -- the cold path the compiled-plan
  architecture replaces),
* the compiled level-batched cascade with a **cold** plan cache (compile +
  execute on every call) and a **warm** one (the repeated-evaluation hot
  path),

records best-of-N wall times, the compile-versus-execute split, plan-cache
hit rates, the plan structure (feedback clusters, levels, column groups) and
the max absolute dense/cascade deviation over *every* registered pack
problem, and appends everything as one run to a JSON trajectory file
(``BENCH_solver.json`` at the repository root by default) so the perf
history is versioned alongside the code.

Examples
--------
Full committed run (161-point grid, the paper's evaluation band)::

    python tools/bench_to_json.py

CI perf smoke (small grid, subset, non-zero exit on regression)::

    python tools/bench_to_json.py --wavelengths 41 --repeats 1 \\
        --problems mzi_ps benes_8x8 spanke_8x8 \\
        --output /tmp/bench_solver.json --assert-speedup spanke_8x8=1.0 \\
        --assert-warm-speedup spanke_8x8=1.0
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402  (after the path insert, like the other tools)

from repro.bench import get_problem  # noqa: E402
from repro.bench.packs import get_pack, pack_names  # noqa: E402
from repro.constants import default_wavelength_grid  # noqa: E402
from repro.netlist.validation import validate_netlist  # noqa: E402
from repro.sim import CircuitSolver  # noqa: E402
from repro.sim.cascade import cascade_solve  # noqa: E402

#: Problems timed by default (mirrors benchmarks/bench_ablation_solver_scaling.py).
DEFAULT_PROBLEMS = (
    "mzi_ps",
    "optical_hybrid",
    "clements_4x4",
    "clements_8x8",
    "benes_8x8",
    "crossbar_8x8",
    "spanke_8x8",
)


def _best_of(fn, repeats: int) -> Dict[str, object]:
    """Best-of-``repeats`` wall time of ``fn``."""
    runs: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - start)
    return {"best_s": min(runs), "mean_s": sum(runs) / len(runs), "runs_s": runs}


def _pr3_reference_evaluate(solver, netlist, wavelengths, compiled, matrices):
    """One evaluation along the PR 3 cold path.

    Re-runs what PR 3's ``evaluate`` did on every call: structural
    validation plus the per-port cascade, which internally recomputes the
    structural masks, the dependency adjacency and the condensation.  The
    flattened-assembly bookkeeping (spans/owner/partner) is *reused* from
    the compiled plan, which slightly under-counts the PR 3 cost -- i.e.
    the reported warm-plan speedups are conservative.
    """
    validate_netlist(netlist, solver.registry, None)
    return cascade_solve(
        matrices,
        list(compiled.spans),
        compiled.owner,
        compiled.partner,
        compiled.injection_ports,
        wavelengths.size,
    )


def _equivalence_sweep(num_wavelengths: int) -> Dict[str, object]:
    """Max |dense - compiled cascade| over every registered pack problem."""
    wavelengths = default_wavelength_grid(num_wavelengths)
    solver = CircuitSolver()
    worst = 0.0
    worst_problem = None
    checked = 0
    for pack_name in pack_names():
        for problem in get_pack(pack_name).build_problems():
            netlist = problem.golden_netlist()
            dense = solver.evaluate(netlist, wavelengths, backend="dense")
            cascade = solver.evaluate(netlist, wavelengths, backend="cascade")
            diff = (
                float(np.max(np.abs(dense.data - cascade.data)))
                if dense.data.size
                else 0.0
            )
            checked += 1
            if diff > worst:
                worst, worst_problem = diff, f"{pack_name}:{problem.name}"
    return {
        "problems_checked": checked,
        "max_abs_diff": worst,
        "worst_problem": worst_problem,
    }


def run_benchmark(
    problems: Sequence[str], num_wavelengths: int, repeats: int
) -> Dict[str, object]:
    """Time every scenario on every problem and assemble one trajectory run."""
    wavelengths = default_wavelength_grid(num_wavelengths)
    solver = CircuitSolver()
    results: List[Dict[str, object]] = []
    for name in problems:
        netlist = get_problem(name).golden_netlist()
        plan = solver.cascade_plan(netlist, wavelengths)
        compiled = solver.compile(netlist, wavelengths)
        # Instance matrices for the PR 3 reference (evaluated via the
        # registry so the reference path is independent of solver caches).
        matrices = []
        for inst in netlist.instances.values():
            ref = netlist.models.get(inst.component, inst.component)
            matrices.append(
                solver.registry.get(ref).evaluate(wavelengths, **inst.settings).data
            )

        # Warm every cache tier, then verify the backends agree.
        reference = solver.evaluate(netlist, wavelengths, backend="dense")
        cascade_result = solver.evaluate(netlist, wavelengths, backend="cascade")
        max_abs_diff = float(np.max(np.abs(reference.data - cascade_result.data)))

        timings = {
            "dense": _best_of(
                lambda: solver.evaluate(netlist, wavelengths, backend="dense"), repeats
            ),
            "cascade_pr3_reference": _best_of(
                lambda: _pr3_reference_evaluate(
                    solver, netlist, wavelengths, compiled, matrices
                ),
                repeats,
            ),
            "cascade_warm_plan": _best_of(
                lambda: solver.evaluate(netlist, wavelengths, backend="cascade"),
                repeats,
            ),
        }

        def cold_evaluate():
            solver.clear_plan_cache()
            solver.evaluate(netlist, wavelengths, backend="cascade")

        timings["cascade_cold_plan"] = _best_of(cold_evaluate, repeats)

        def cold_compile():
            solver.clear_plan_cache()
            solver.compile(netlist, wavelengths)

        compile_timing = _best_of(cold_compile, repeats)
        solver.evaluate(netlist, wavelengths, backend="cascade")  # re-warm

        warm = timings["cascade_warm_plan"]["best_s"]
        entry = {
            "problem": name,
            "num_instances": netlist.num_instances(),
            "num_ports": plan.num_ports,
            "num_feedback_clusters": len(plan.feedback),
            "largest_feedback_cluster": plan.largest_feedback_cluster,
            "num_levels": compiled.num_levels,
            "num_column_groups": compiled.num_column_groups,
            "active_cells": compiled.active_cells,
            "total_cells": compiled.num_ports * compiled.num_external,
            "max_abs_diff": max_abs_diff,
            "backends": timings,
            "compile_vs_execute": {
                "compile_s": compile_timing["best_s"],
                "warm_execute_s": warm,
                "compile_fraction_of_cold": compile_timing["best_s"]
                / max(timings["cascade_cold_plan"]["best_s"], 1e-12),
            },
            "speedup_cascade_over_dense": timings["dense"]["best_s"] / warm,
            "warm_plan_speedup_vs_pr3_cold": timings["cascade_pr3_reference"]["best_s"]
            / warm,
            "warm_plan_speedup_vs_cold_plan": timings["cascade_cold_plan"]["best_s"]
            / warm,
        }
        results.append(entry)
        print(
            f"{name}: dense={timings['dense']['best_s']:.4f}s "
            f"pr3={timings['cascade_pr3_reference']['best_s']:.4f}s "
            f"cold={timings['cascade_cold_plan']['best_s']:.4f}s "
            f"warm={warm:.4f}s "
            f"warm-vs-pr3={entry['warm_plan_speedup_vs_pr3_cold']:.1f}x "
            f"diff={max_abs_diff:.1e}",
            file=sys.stderr,
        )

    plan_stats = solver.plan_cache_stats()
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "num_wavelengths": num_wavelengths,
            "repeats": repeats,
            "timing": "best of repeats; per-device instance cache warm; "
            "'warm' keeps the compiled-plan cache, 'cold' clears it per run; "
            "'cascade_pr3_reference' is the retained per-port PR 3 path",
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "plan_cache": plan_stats.as_dict(),
        "plan_cache_hit_rate": plan_stats.hit_rate,
        "equivalence": _equivalence_sweep(num_wavelengths),
        "results": results,
    }


def merge_trajectory(output: Path, run: Dict[str, object], fresh: bool) -> Dict[str, object]:
    """Append ``run`` to the trajectory in ``output`` (create or migrate it).

    A pre-trajectory single-snapshot file (the PR 3 format, recognised by a
    top-level ``results`` key) becomes the first run of the trajectory, so
    ``BENCH_*.json`` files grow a history instead of being overwritten.
    """
    runs: List[Dict[str, object]] = []
    if not fresh and output.exists():
        try:
            existing = json.loads(output.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            if isinstance(existing.get("runs"), list):
                runs = existing["runs"]
            elif "results" in existing:
                runs = [existing]  # legacy single snapshot
    runs.append(run)
    return {
        "benchmark": "solver-backends",
        "schema": "trajectory-v1",
        "generated_by": "tools/bench_to_json.py",
        "runs": runs,
    }


def _parse_assertions(raw: Optional[Sequence[str]], flag: str) -> Dict[str, float]:
    """Parse repeated ``PROBLEM=FACTOR`` assertion flags."""
    assertions: Dict[str, float] = {}
    for item in raw or ():
        name, separator, factor = item.partition("=")
        if not separator or not name:
            raise SystemExit(f"{flag} must look like PROBLEM=FACTOR, got {item!r}")
        try:
            assertions[name] = float(factor)
        except ValueError:
            raise SystemExit(
                f"{flag} factor must be a number, got {factor!r} in {item!r}"
            ) from None
    return assertions


def _check_assertions(
    by_problem: Dict[str, Dict[str, object]],
    assertions: Dict[str, float],
    metric: str,
    label: str,
    failures: List[str],
) -> None:
    """Collect failures of one assertion family."""
    for name, factor in assertions.items():
        entry = by_problem.get(name)
        if entry is None:
            failures.append(f"{name}: not benchmarked")
            continue
        value = entry[metric]
        if value < factor:
            failures.append(f"{name}: {label} {value:.2f}x < required {factor:.2f}x")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python tools/bench_to_json.py``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_solver.json",
        help="JSON trajectory file to append to (default: BENCH_solver.json)",
    )
    parser.add_argument(
        "--problems",
        nargs="*",
        default=list(DEFAULT_PROBLEMS),
        help="problem names to time (default: the solver-scaling set)",
    )
    parser.add_argument(
        "--wavelengths",
        type=int,
        default=161,
        help="wavelength-grid points (default: the 161-point evaluation grid)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions per scenario (best-of)"
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="start a new trajectory instead of appending to an existing file",
    )
    parser.add_argument(
        "--assert-speedup",
        action="append",
        default=None,
        metavar="PROBLEM=FACTOR",
        help="exit non-zero unless the warm compiled cascade is at least "
        "FACTOR times faster than dense on PROBLEM (repeatable)",
    )
    parser.add_argument(
        "--assert-warm-speedup",
        action="append",
        default=None,
        metavar="PROBLEM=FACTOR",
        help="exit non-zero unless warm-plan repeated evaluation is at least "
        "FACTOR times faster than the cold (compile-every-call) path on "
        "PROBLEM (repeatable; 1.0 = 'no slower')",
    )
    args = parser.parse_args(argv)
    # Validate flags that would otherwise only fail after minutes of timing.
    speedup_assertions = _parse_assertions(args.assert_speedup, "--assert-speedup")
    warm_assertions = _parse_assertions(args.assert_warm_speedup, "--assert-warm-speedup")
    if args.repeats < 1:
        raise SystemExit(f"--repeats must be >= 1, got {args.repeats}")

    run = run_benchmark(args.problems, args.wavelengths, args.repeats)
    payload = merge_trajectory(args.output, run, args.fresh)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"wrote {args.output} ({len(payload['runs'])} run(s) in trajectory)",
        file=sys.stderr,
    )

    failures: List[str] = []
    by_problem = {entry["problem"]: entry for entry in run["results"]}
    _check_assertions(
        by_problem, speedup_assertions, "speedup_cascade_over_dense", "cascade speedup", failures
    )
    _check_assertions(
        by_problem,
        warm_assertions,
        "warm_plan_speedup_vs_cold_plan",
        "warm-plan speedup",
        failures,
    )
    if failures:
        print("speedup assertions FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
