#!/usr/bin/env python
"""Time the circuit-solver backends and append to a JSON benchmark trajectory.

Runs the solver-scaling problems (the same set as
``benchmarks/bench_ablation_solver_scaling.py``) through

* the ``dense`` backend,
* the retained **PR 3 per-port cascade reference**
  (:func:`repro.sim.cascade.cascade_solve`, which recomputes masks,
  adjacency and plan on every call -- the cold path the compiled-plan
  architecture replaces),
* the compiled level-batched cascade with a **cold** plan cache (compile +
  execute on every call) and a **warm** one (the repeated-evaluation hot
  path),
* **batched versus looped settings-sample evaluation**: ``--batch-samples``
  settings variants of each problem evaluated as one fused
  ``evaluate_batch`` call versus the per-sample ``evaluate`` loop (both
  warm, both settings-mutating -- the pass@k / Monte-Carlo workload shape),
* **thread-mode versus process-sharded sweep execution**: one small sweep
  per registered pack timed on the sequential thread tier and sharded
  across ``--processes`` worker processes, with the byte-identity of the
  two reports asserted (``--assert-process-speedup`` gates the speedup on
  multi-core CI hosts),

records best-of-N wall times, the compile-versus-execute split, plan-cache
hit rates, the plan structure (feedback clusters, levels, column groups) and
the max absolute dense/cascade *and* batched/looped deviations over *every*
registered pack problem, and appends everything as one run to a JSON
trajectory file (``BENCH_solver.json`` at the repository root by default) so
the perf history is versioned alongside the code.

Examples
--------
Full committed run (161-point grid, the paper's evaluation band)::

    python tools/bench_to_json.py

CI perf smoke (small grid, subset, non-zero exit on regression)::

    python tools/bench_to_json.py --wavelengths 41 --repeats 1 \\
        --problems mzi_ps benes_8x8 spanke_8x8 \\
        --output /tmp/bench_solver.json --assert-speedup spanke_8x8=1.0 \\
        --assert-warm-speedup spanke_8x8=1.0 \\
        --assert-batch-speedup spanke_8x8=1.0
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402  (after the path insert, like the other tools)

from repro.bench import get_problem  # noqa: E402
from repro.bench.packs import get_pack, pack_names  # noqa: E402
from repro.constants import default_wavelength_grid  # noqa: E402
from repro.engine.procpool import resolve_processes  # noqa: E402
from repro.harness.runner import SweepConfig, run_sweep  # noqa: E402
from repro.netlist.validation import validate_netlist  # noqa: E402
from repro.sim import CircuitSolver, apply_settings  # noqa: E402
from repro.sim.cascade import cascade_solve  # noqa: E402
from repro.sim.kernels import kernel_status  # noqa: E402

#: Problems timed by default (mirrors benchmarks/bench_ablation_solver_scaling.py).
DEFAULT_PROBLEMS = (
    "mzi_ps",
    "optical_hybrid",
    "clements_4x4",
    "clements_8x8",
    "benes_8x8",
    "crossbar_8x8",
    "spanke_8x8",
)


def _best_of(fn, repeats: int) -> Dict[str, object]:
    """Best-of-``repeats`` wall time of ``fn``."""
    runs: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - start)
    return {"best_s": min(runs), "mean_s": sum(runs) / len(runs), "runs_s": runs}


def _settings_perturbations(netlist, count, salt=0):
    """Settings overrides modelling a process-corner sample stack.

    Per sample, a global fabrication-corner scale factor (deterministic in
    ``(sample, salt)``) is applied to every instance's float settings --
    the classic slow/fast process-corner shape, and the shape of pass@k
    candidate drafts that retune a design parameter throughout (zeros stay
    zero, so structural masks -- and therefore the compiled plan -- are
    shared by all samples).  Devices without numeric settings get the
    corner applied to an ``extinction_db`` / ``loss_db``-style knob their
    model accepts.  A fresh ``salt`` yields entirely fresh draws: corner
    samples never repeat, so timings must not be served by warm per-variant
    instance-cache entries.
    """
    from repro.sim import default_registry

    registry = default_registry()
    batch = []
    for sample in range(count):
        factor = 1.0 - 1e-6 * (1.0 + (sample * 131 + salt * 7919) % 1000)
        overrides = {}
        # One shared dict per distinct perturbation content: instances of
        # the same device type share the override object, which the
        # solver's id-keyed fingerprint memo turns into one serialisation.
        shared: Dict[tuple, Dict[str, float]] = {}
        for name, inst in netlist.instances.items():
            perturbed = {
                key: value * factor
                for key, value in inst.settings.items()
                if isinstance(value, float) and not isinstance(value, bool)
            }
            if not perturbed:
                # Settings-free instances (switch fabrics): perturb a knob
                # their model accepts so the sample is a real variant.
                ref = netlist.models.get(inst.component, inst.component)
                if ref in registry:
                    parameters = registry.get(ref).parameters
                    for knob in ("extinction_db", "loss_db"):
                        if knob in parameters:
                            perturbed[knob] = float(parameters[knob]) * factor
                            break
            if perturbed:
                content = tuple(sorted(perturbed.items()))
                overrides[name] = shared.setdefault(content, perturbed)
        batch.append(overrides)
    return batch


def _time_settings_batch(solver, netlist, wavelengths, batch_samples, repeats):
    """Batched-vs-looped timing of one problem's settings-sample stack.

    Models the Monte-Carlo / pass@k workload faithfully: every timed
    repetition evaluates a *fresh* stack of draws (real sample settings
    never repeat, so per-variant instance-cache warmth would be fiction),
    while the structure work stays warm (the plan cache serves the shared
    topology, exactly as in a real sweep).  ``looped`` is the pre-batching
    pipeline -- build each sample's derived netlist and evaluate it --
    and ``batched`` is one ``evaluate_batch`` call over the same draws.
    """
    # Correctness first: batched must match the per-sample loop exactly.
    check = _settings_perturbations(netlist, batch_samples, salt=0)
    looped_results = [
        solver.evaluate(apply_settings(netlist, overrides), wavelengths)
        for overrides in check
    ]
    batched_results = solver.evaluate_batch(netlist, check, wavelengths)
    max_abs_diff = max(
        float(np.max(np.abs(a.data - b.data))) if a.data.size else 0.0
        for a, b in zip(batched_results, looped_results)
    )

    salt_counter = {"next": 1}

    def fresh_batch():
        """A never-seen-before stack of draws (new salt per invocation)."""
        salt = salt_counter["next"]
        salt_counter["next"] += 1
        return _settings_perturbations(netlist, batch_samples, salt=salt)

    looped = _best_of(
        lambda: [
            solver.evaluate(apply_settings(netlist, overrides), wavelengths)
            for overrides in fresh_batch()
        ],
        repeats,
    )
    batched = _best_of(
        lambda: solver.evaluate_batch(netlist, fresh_batch(), wavelengths), repeats
    )
    return {
        "batch_samples": batch_samples,
        "max_abs_diff_vs_looped": max_abs_diff,
        "looped": looped,
        "batched": batched,
        "batched_speedup_vs_looped": looped["best_s"] / max(batched["best_s"], 1e-12),
    }


#: Small per-pack sweep shapes of the thread-vs-process execution timing
#: (subsets / shrunk parameters keep one sweep to a few seconds).
SWEEP_TIMING_CASES = {
    "core": dict(
        problems=(
            "clements_4x4",
            "reck_4x4",
            "nls",
            "direct_modulator",
            "wdm_mux",
            "mzi_ps",
        )
    ),
    "variability": dict(pack_params={"corners": 2}),
    "wdm-links": dict(pack_params={"channels": (2, 4)}),
}


def _sweep_execution_benchmark(processes: int, repeats: int) -> Dict[str, object]:
    """Thread-mode vs process-mode all-pack sweep timing.

    Runs the same small sweep over every registered pack once on the thread
    tier (``workers=1``, the sequential baseline) and once sharded across
    ``processes`` worker processes, recording wall times, the speedup, and a
    byte-identity check of the two reports.  The process column includes the
    full fixed overhead (pool start-up, per-worker context rebuild), which
    is exactly what a user pays; expect speedups only on multi-core hosts
    and sweeps that amortise that overhead.
    """
    resolved = resolve_processes(processes)
    packs: List[Dict[str, object]] = []
    thread_total = 0.0
    process_total = 0.0
    identical_everywhere = True
    for pack_name in pack_names():
        case = SWEEP_TIMING_CASES.get(pack_name, {})

        def build_config(**overrides):
            return SweepConfig(
                samples_per_problem=2,
                max_feedback_iterations=1,
                num_wavelengths=11,
                pack=pack_name,
                **case,
                **overrides,
            )

        def run_thread():
            return run_sweep(build_config(), restriction_settings=(False, True))

        def run_process():
            return run_sweep(
                build_config(execution_mode="process", processes=resolved),
                restriction_settings=(False, True),
            )

        thread_result = run_thread()
        process_result = run_process()
        identical = json.dumps(thread_result.to_dict(), sort_keys=True) == json.dumps(
            process_result.to_dict(), sort_keys=True
        )
        identical_everywhere = identical_everywhere and identical
        thread_timing = _best_of(run_thread, repeats)
        process_timing = _best_of(run_process, repeats)
        thread_total += thread_timing["best_s"]
        process_total += process_timing["best_s"]
        packs.append(
            {
                "pack": pack_name,
                "byte_identical": identical,
                "thread": thread_timing,
                "process": process_timing,
                "process_speedup_vs_thread": thread_timing["best_s"]
                / max(process_timing["best_s"], 1e-12),
            }
        )
        print(
            f"sweep[{pack_name}]: thread={thread_timing['best_s']:.3f}s "
            f"process({resolved})={process_timing['best_s']:.3f}s "
            f"speedup={packs[-1]['process_speedup_vs_thread']:.2f}x "
            f"identical={identical}",
            file=sys.stderr,
        )
    return {
        "processes": resolved,
        "cpu_count": os.cpu_count(),
        "byte_identical": identical_everywhere,
        "thread_total_best_s": thread_total,
        "process_total_best_s": process_total,
        "process_speedup_vs_thread": thread_total / max(process_total, 1e-12),
        "packs": packs,
    }


def _pr3_reference_evaluate(solver, netlist, wavelengths, compiled, matrices):
    """One evaluation along the PR 3 cold path.

    Re-runs what PR 3's ``evaluate`` did on every call: structural
    validation plus the per-port cascade, which internally recomputes the
    structural masks, the dependency adjacency and the condensation.  The
    flattened-assembly bookkeeping (spans/owner/partner) is *reused* from
    the compiled plan, which slightly under-counts the PR 3 cost -- i.e.
    the reported warm-plan speedups are conservative.
    """
    validate_netlist(netlist, solver.registry, None)
    return cascade_solve(
        matrices,
        list(compiled.spans),
        compiled.owner,
        compiled.partner,
        compiled.injection_ports,
        wavelengths.size,
    )


def _equivalence_sweep(num_wavelengths: int) -> Dict[str, object]:
    """Max backend and batched/looped deviations over every registered pack problem.

    Checks two invariants per problem: |dense - compiled cascade| on the
    golden netlist, and |batched - per-sample loop| over a small perturbed
    settings batch (the batched-executor acceptance criterion).
    """
    wavelengths = default_wavelength_grid(num_wavelengths)
    solver = CircuitSolver()
    worst = 0.0
    worst_problem = None
    batch_worst = 0.0
    batch_worst_problem = None
    checked = 0
    for pack_name in pack_names():
        for problem in get_pack(pack_name).build_problems():
            netlist = problem.golden_netlist()
            dense = solver.evaluate(netlist, wavelengths, backend="dense")
            cascade = solver.evaluate(netlist, wavelengths, backend="cascade")
            diff = (
                float(np.max(np.abs(dense.data - cascade.data)))
                if dense.data.size
                else 0.0
            )
            batch = _settings_perturbations(netlist, 3)
            batched = solver.evaluate_batch(netlist, batch, wavelengths)
            batch_diff = 0.0
            for overrides, result in zip(batch, batched):
                loop = solver.evaluate(apply_settings(netlist, overrides), wavelengths)
                if result.data.size:
                    batch_diff = max(
                        batch_diff, float(np.max(np.abs(result.data - loop.data)))
                    )
            checked += 1
            if diff > worst:
                worst, worst_problem = diff, f"{pack_name}:{problem.name}"
            if batch_diff > batch_worst:
                batch_worst = batch_diff
                batch_worst_problem = f"{pack_name}:{problem.name}"
    return {
        "problems_checked": checked,
        "max_abs_diff": worst,
        "worst_problem": worst_problem,
        "batched_vs_looped_max_abs_diff": batch_worst,
        "batched_vs_looped_worst_problem": batch_worst_problem,
    }


def run_benchmark(
    problems: Sequence[str],
    num_wavelengths: int,
    repeats: int,
    batch_samples: int,
    processes: int = 0,
) -> Dict[str, object]:
    """Time every scenario on every problem and assemble one trajectory run."""
    wavelengths = default_wavelength_grid(num_wavelengths)
    solver = CircuitSolver(instance_cache_entries=8192)
    results: List[Dict[str, object]] = []
    for name in problems:
        netlist = get_problem(name).golden_netlist()
        plan = solver.cascade_plan(netlist, wavelengths)
        compiled = solver.compile(netlist, wavelengths)
        # Instance matrices for the PR 3 reference (evaluated via the
        # registry so the reference path is independent of solver caches).
        matrices = []
        for inst in netlist.instances.values():
            ref = netlist.models.get(inst.component, inst.component)
            matrices.append(
                solver.registry.get(ref).evaluate(wavelengths, **inst.settings).data
            )

        # Warm every cache tier, then verify the backends agree.
        reference = solver.evaluate(netlist, wavelengths, backend="dense")
        cascade_result = solver.evaluate(netlist, wavelengths, backend="cascade")
        max_abs_diff = float(np.max(np.abs(reference.data - cascade_result.data)))

        timings = {
            "dense": _best_of(
                lambda: solver.evaluate(netlist, wavelengths, backend="dense"), repeats
            ),
            "cascade_pr3_reference": _best_of(
                lambda: _pr3_reference_evaluate(
                    solver, netlist, wavelengths, compiled, matrices
                ),
                repeats,
            ),
            "cascade_warm_plan": _best_of(
                lambda: solver.evaluate(netlist, wavelengths, backend="cascade"),
                repeats,
            ),
        }

        def cold_evaluate():
            solver.clear_plan_cache()
            solver.evaluate(netlist, wavelengths, backend="cascade")

        timings["cascade_cold_plan"] = _best_of(cold_evaluate, repeats)

        def cold_compile():
            solver.clear_plan_cache()
            solver.compile(netlist, wavelengths)

        compile_timing = _best_of(cold_compile, repeats)
        solver.evaluate(netlist, wavelengths, backend="cascade")  # re-warm

        settings_batch = _time_settings_batch(
            solver, netlist, wavelengths, batch_samples, repeats
        )

        warm = timings["cascade_warm_plan"]["best_s"]
        entry = {
            "problem": name,
            "num_instances": netlist.num_instances(),
            "num_ports": plan.num_ports,
            "num_feedback_clusters": len(plan.feedback),
            "largest_feedback_cluster": plan.largest_feedback_cluster,
            "num_levels": compiled.num_levels,
            "num_column_groups": compiled.num_column_groups,
            "active_cells": compiled.active_cells,
            "total_cells": compiled.num_ports * compiled.num_external,
            "max_abs_diff": max_abs_diff,
            "backends": timings,
            "compile_vs_execute": {
                "compile_s": compile_timing["best_s"],
                "warm_execute_s": warm,
                "compile_fraction_of_cold": compile_timing["best_s"]
                / max(timings["cascade_cold_plan"]["best_s"], 1e-12),
            },
            "speedup_cascade_over_dense": timings["dense"]["best_s"] / warm,
            "warm_plan_speedup_vs_pr3_cold": timings["cascade_pr3_reference"]["best_s"]
            / warm,
            "warm_plan_speedup_vs_cold_plan": timings["cascade_cold_plan"]["best_s"]
            / warm,
            "settings_batch": settings_batch,
            "batched_settings_speedup_vs_looped": settings_batch[
                "batched_speedup_vs_looped"
            ],
        }
        results.append(entry)
        print(
            f"{name}: dense={timings['dense']['best_s']:.4f}s "
            f"pr3={timings['cascade_pr3_reference']['best_s']:.4f}s "
            f"cold={timings['cascade_cold_plan']['best_s']:.4f}s "
            f"warm={warm:.4f}s "
            f"warm-vs-pr3={entry['warm_plan_speedup_vs_pr3_cold']:.1f}x "
            f"batched-vs-looped={entry['batched_settings_speedup_vs_looped']:.1f}x "
            f"diff={max_abs_diff:.1e}",
            file=sys.stderr,
        )

    plan_stats = solver.plan_cache_stats()
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "num_wavelengths": num_wavelengths,
            "repeats": repeats,
            "batch_samples": batch_samples,
            "timing": "best of repeats; per-device instance cache warm; "
            "'warm' keeps the compiled-plan cache, 'cold' clears it per run; "
            "'cascade_pr3_reference' is the retained per-port PR 3 path; "
            "'settings_batch' times one fused evaluate_batch call vs the "
            "per-sample evaluate loop over the same settings-mutating stack",
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "kernels": kernel_status(),
        },
        "plan_cache": plan_stats.as_dict(),
        "plan_cache_hit_rate": plan_stats.hit_rate,
        "batch_stats": solver.batch_stats().as_dict(),
        "equivalence": _equivalence_sweep(num_wavelengths),
        "sweep_execution": _sweep_execution_benchmark(processes, repeats),
        "results": results,
    }


def merge_trajectory(output: Path, run: Dict[str, object], fresh: bool) -> Dict[str, object]:
    """Append ``run`` to the trajectory in ``output`` (create or migrate it).

    A pre-trajectory single-snapshot file (the PR 3 format, recognised by a
    top-level ``results`` key) becomes the first run of the trajectory, so
    ``BENCH_*.json`` files grow a history instead of being overwritten.
    """
    runs: List[Dict[str, object]] = []
    if not fresh and output.exists():
        try:
            existing = json.loads(output.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            if isinstance(existing.get("runs"), list):
                runs = existing["runs"]
            elif "results" in existing:
                runs = [existing]  # legacy single snapshot
    runs.append(run)
    return {
        "benchmark": "solver-backends",
        "schema": "trajectory-v1",
        "generated_by": "tools/bench_to_json.py",
        "runs": runs,
    }


def _parse_assertions(raw: Optional[Sequence[str]], flag: str) -> Dict[str, float]:
    """Parse repeated ``PROBLEM=FACTOR`` assertion flags."""
    assertions: Dict[str, float] = {}
    for item in raw or ():
        name, separator, factor = item.partition("=")
        if not separator or not name:
            raise SystemExit(f"{flag} must look like PROBLEM=FACTOR, got {item!r}")
        try:
            assertions[name] = float(factor)
        except ValueError:
            raise SystemExit(
                f"{flag} factor must be a number, got {factor!r} in {item!r}"
            ) from None
    return assertions


def _check_assertions(
    by_problem: Dict[str, Dict[str, object]],
    assertions: Dict[str, float],
    metric: str,
    label: str,
    failures: List[str],
) -> None:
    """Collect failures of one assertion family."""
    for name, factor in assertions.items():
        entry = by_problem.get(name)
        if entry is None:
            failures.append(f"{name}: not benchmarked")
            continue
        value = entry[metric]
        if value < factor:
            failures.append(f"{name}: {label} {value:.2f}x < required {factor:.2f}x")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python tools/bench_to_json.py``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_solver.json",
        help="JSON trajectory file to append to (default: BENCH_solver.json)",
    )
    parser.add_argument(
        "--problems",
        nargs="*",
        default=list(DEFAULT_PROBLEMS),
        help="problem names to time (default: the solver-scaling set)",
    )
    parser.add_argument(
        "--wavelengths",
        type=int,
        default=161,
        help="wavelength-grid points (default: the 161-point evaluation grid)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions per scenario (best-of)"
    )
    parser.add_argument(
        "--batch-samples",
        type=int,
        default=64,
        help="settings samples of the batched-vs-looped timing (default: 64, "
        "a typical Monte-Carlo draw count)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=0,
        metavar="N",
        help="worker-process count of the thread-vs-process sweep timing "
        "(default 0 = one per core)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="start a new trajectory instead of appending to an existing file",
    )
    parser.add_argument(
        "--assert-speedup",
        action="append",
        default=None,
        metavar="PROBLEM=FACTOR",
        help="exit non-zero unless the warm compiled cascade is at least "
        "FACTOR times faster than dense on PROBLEM (repeatable)",
    )
    parser.add_argument(
        "--assert-warm-speedup",
        action="append",
        default=None,
        metavar="PROBLEM=FACTOR",
        help="exit non-zero unless warm-plan repeated evaluation is at least "
        "FACTOR times faster than the cold (compile-every-call) path on "
        "PROBLEM (repeatable; 1.0 = 'no slower')",
    )
    parser.add_argument(
        "--assert-batch-speedup",
        action="append",
        default=None,
        metavar="PROBLEM=FACTOR",
        help="exit non-zero unless one fused evaluate_batch call is at least "
        "FACTOR times faster than the per-sample evaluate loop on PROBLEM "
        "(repeatable; 1.0 = 'no slower')",
    )
    parser.add_argument(
        "--assert-process-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="exit non-zero unless the process-sharded all-pack sweep is at "
        "least FACTOR times faster than the thread-mode baseline (meaningful "
        "on multi-core hosts only; byte-identity of the two reports is "
        "always asserted)",
    )
    args = parser.parse_args(argv)
    # Validate flags that would otherwise only fail after minutes of timing.
    speedup_assertions = _parse_assertions(args.assert_speedup, "--assert-speedup")
    warm_assertions = _parse_assertions(args.assert_warm_speedup, "--assert-warm-speedup")
    batch_assertions = _parse_assertions(args.assert_batch_speedup, "--assert-batch-speedup")
    if args.repeats < 1:
        raise SystemExit(f"--repeats must be >= 1, got {args.repeats}")
    if args.batch_samples < 1:
        raise SystemExit(f"--batch-samples must be >= 1, got {args.batch_samples}")

    run = run_benchmark(
        args.problems, args.wavelengths, args.repeats, args.batch_samples, args.processes
    )
    payload = merge_trajectory(args.output, run, args.fresh)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"wrote {args.output} ({len(payload['runs'])} run(s) in trajectory)",
        file=sys.stderr,
    )

    failures: List[str] = []
    by_problem = {entry["problem"]: entry for entry in run["results"]}
    _check_assertions(
        by_problem, speedup_assertions, "speedup_cascade_over_dense", "cascade speedup", failures
    )
    _check_assertions(
        by_problem,
        warm_assertions,
        "warm_plan_speedup_vs_cold_plan",
        "warm-plan speedup",
        failures,
    )
    _check_assertions(
        by_problem,
        batch_assertions,
        "batched_settings_speedup_vs_looped",
        "batched-settings speedup",
        failures,
    )
    sweep_execution = run["sweep_execution"]
    if not sweep_execution["byte_identical"]:
        failures.append("process-sharded sweep reports are not byte-identical")
    if args.assert_process_speedup is not None:
        speedup = sweep_execution["process_speedup_vs_thread"]
        if speedup < args.assert_process_speedup:
            failures.append(
                f"process sweep speedup {speedup:.2f}x < required "
                f"{args.assert_process_speedup:.2f}x "
                f"({sweep_execution['processes']} processes, "
                f"{sweep_execution['cpu_count']} cores)"
            )
    if failures:
        print("speedup assertions FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
