"""Service durability smoke: SIGKILL, recover, byte-identical results.

The CI-facing end-to-end check of the evaluation service's crash story:

1. Reference: an uninterrupted in-process service computes the expected
   stored-report bytes for three job specs.
2. Crash: a real ``python -m repro.service serve`` daemon takes the same
   three submissions (one worker: done / running / queued) and is
   SIGKILLed the moment the first job finishes -- no drain, no goodbye.
3. Recover: the daemon restarts on the same database and cache with
   ``--recover``; every pre-crash submission must reach DONE -- the
   re-adopted jobs resume journal-warm -- and every stored report must be
   byte-identical to the reference.
4. Backpressure: a daemon started with ``--max-queued 1`` must answer the
   overflowing submit with a structured ``queue_full`` error carrying the
   queue depth, while still completing the accepted jobs.

Exits non-zero on the first violation.

Usage::

    PYTHONPATH=src python tools/service_recovery_smoke.py
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, SRC)

from repro.service import EvalService, JobSpec, JobState  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.store import ResultsStore  # noqa: E402

BASE = dict(
    models=("GPT-4o",),
    restrictions=(False,),
    samples_per_problem=2,
    max_feedback_iterations=2,
    num_wavelengths=5,
    problems=("mzi_ps",),
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def serve(db: Path, cache: Path, *extra: str):
    """Start a daemon subprocess; returns (process, parsed address line)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("PYTHONHASHSEED", "0")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "serve",
            "--db", str(db), "--cache-dir", str(cache), "--job-workers", "1",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        fail(f"daemon died on startup: {proc.stderr.read()}")
    return proc, json.loads(line)


def main() -> int:
    specs = [JobSpec(**BASE, base_seed=seed) for seed in (0, 1, 2)]
    with tempfile.TemporaryDirectory(prefix="recovery-smoke-") as raw:
        root = Path(raw)

        # -- 1. reference bytes from an uninterrupted run --------------
        expected = {}
        with EvalService(root / "ref.db", cache_dir=root / "refcache") as ref:
            for spec in specs:
                record = ref.wait(ref.submit(spec), timeout=300.0)
                if record.state is not JobState.DONE:
                    fail(f"reference job ended {record.state.value}: {record.error}")
                expected[spec.fingerprint()] = ref.store.load_report_json(
                    record.run_id, "GPT-4o", False
                )
        print(f"ok: reference run stored {len(expected)} reports")

        # -- 2. SIGKILL a live daemon mid-flight -----------------------
        db, cache = root / "results.db", root / "cache"
        proc, addr = serve(db, cache)
        client = ServiceClient(addr["host"], addr["port"])
        job_ids = [client.submit(specs[0])]
        first = client.poll(job_ids[0], timeout=300.0, interval=0.02, max_interval=0.05)
        if first["state"] != "done":
            fail(f"first job ended {first['state']} before the crash")
        # Submit the remaining jobs and kill before they can finish: the
        # crash deterministically leaves one DONE, one RUNNING-or-QUEUED,
        # one QUEUED job behind.
        job_ids += [client.submit(spec) for spec in specs[1:]]
        proc.kill()
        proc.wait(timeout=30.0)
        print("ok: daemon SIGKILLed with one job done and two jobs in flight")

        # -- 3. restart with --recover: nothing may be lost ------------
        proc, addr = serve(db, cache, "--recover")
        try:
            recovery = addr["recovery"]
            if not recovery["enabled"]:
                fail("restarted daemon did not report recovery enabled")
            if recovery["recovered"] < 2:
                fail(
                    "the in-flight jobs were not re-adopted "
                    f"(recovered={recovery['recovered']})"
                )
            client = ServiceClient(addr["host"], addr["port"])
            run_ids = {}
            for job_id in job_ids:
                record = client.poll(job_id, timeout=300.0)
                if record["state"] != "done":
                    fail(f"job {job_id} ended {record['state']} after recovery")
                run_ids[job_id] = str(record["run_id"])
            client.shutdown()
            proc.wait(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        store = ResultsStore(db)
        for spec, job_id in zip(specs, job_ids):
            stored = store.load_report_json(run_ids[job_id], "GPT-4o", False)
            if stored != expected[spec.fingerprint()]:
                fail(f"recovered report of {job_id} is not byte-identical")
        print(
            f"ok: --recover re-adopted {recovery['recovered']} jobs, all "
            f"{len(job_ids)} pre-crash submissions DONE, reports byte-identical"
        )

        # -- 4. backpressure: structured queue_full rejection ----------
        proc, addr = serve(root / "bp.db", root / "bpcache", "--max-queued", "1")
        try:
            client = ServiceClient(addr["host"], addr["port"])
            running = client.submit(specs[0])
            # Wait for the worker to pick the first job up, so the second
            # deterministically occupies the whole max_queued=1 budget.
            import time as _time

            deadline = _time.monotonic() + 60.0
            while client.status(running)["state"] == "queued":
                if _time.monotonic() > deadline:
                    fail("first backpressure job never started running")
                _time.sleep(0.02)
            accepted = [running, client.submit(specs[1])]
            # Raw request: the structured error fields, not the client's raise.
            payload = json.dumps(
                {"op": "submit", "spec": specs[2].to_dict()}
            ) + "\n"
            with socket.create_connection(
                (addr["host"], addr["port"]), timeout=30.0
            ) as sock:
                sock.sendall(payload.encode("utf-8"))
                response = json.loads(sock.makefile("r").readline())
            if response.get("ok") is not False:
                fail(f"overflow submit was not rejected: {response!r}")
            if response.get("error_code") != "queue_full":
                fail(f"rejection is not structured: {response!r}")
            if "queue_depth" not in response or "max_queued" not in response:
                fail(f"queue_full error lacks context: {response!r}")
            for job_id in accepted:
                if client.poll(job_id, timeout=300.0)["state"] != "done":
                    fail(f"accepted job {job_id} did not finish under backpressure")
            client.shutdown()
            proc.wait(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        print(
            "ok: overflow submit rejected with structured queue_full "
            f"(depth={response['queue_depth']}, max={response['max_queued']}), "
            "accepted jobs finished"
        )

    print("service recovery smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
